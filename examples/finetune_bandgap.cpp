// Fine-tuning — load a pretrained encoder checkpoint and fine-tune it on
// Materials Project band-gap regression, comparing against random
// initialization (the paper's Fig. 5 workflow).
//
// Usage: finetune_bandgap [checkpoint_path] [epochs]
//   checkpoint defaults to pretrained_encoder.msck (run
//   pretrain_symmetry first, or the example falls back to a quick
//   in-process pretraining pass).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "data/dataloader.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "nn/serialize.hpp"
#include "optim/adam.hpp"
#include "sym/synthetic_dataset.hpp"
#include "tasks/classification.hpp"
#include "tasks/regression.hpp"
#include "train/trainer.hpp"

namespace {

using namespace matsci;

models::EGNNConfig encoder_config() {
  models::EGNNConfig cfg;
  cfg.hidden_dim = 32;
  cfg.pos_hidden = 16;
  cfg.num_layers = 3;
  return cfg;
}

models::OutputHeadConfig head_config() {
  models::OutputHeadConfig cfg;
  cfg.hidden_dim = 32;
  cfg.num_blocks = 2;
  cfg.dropout = 0.0f;
  return cfg;
}

/// Fallback when no checkpoint exists: a brief in-process pretraining.
nn::StateDict quick_pretrain() {
  std::printf("no checkpoint found — running a quick in-process "
              "pretraining pass...\n");
  sym::SyntheticPointGroupOptions sym_opts;
  sym_opts.max_points = 24;
  sym::SyntheticPointGroupDataset ds(640, 17, sym_opts);
  data::DataLoaderOptions lo;
  lo.batch_size = 32;
  lo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader loader(ds, lo);
  core::RngEngine rng(11);
  auto encoder = std::make_shared<models::EGNN>(encoder_config(), rng);
  tasks::ClassificationTask task(encoder, "point_group",
                                 sym::num_point_groups(), head_config(), rng);
  optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3);
  train::TrainerOptions topts;
  topts.max_epochs = 4;
  train::Trainer(topts).fit(task, loader, nullptr, opt);
  return nn::state_dict(task);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string ckpt_path =
      argc > 1 ? argv[1] : "pretrained_encoder.msck";
  const std::int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 10;

  materials::MaterialsProjectDataset dataset(320, 41);
  auto [train_ds, val_ds] = data::train_val_split(dataset, 0.2, 7);
  const data::TargetStats stats =
      data::compute_target_stats(train_ds, "band_gap");

  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.seed = 3;
  lo.collate.radius.cutoff = 4.5;
  data::DataLoader train_loader(train_ds, lo);
  data::DataLoaderOptions vo = lo;
  vo.shuffle = false;
  data::DataLoader val_loader(val_ds, vo);

  const nn::StateDict pretrained_sd =
      std::filesystem::exists(ckpt_path)
          ? nn::load_state_dict_file(ckpt_path)
          : quick_pretrain();

  auto run = [&](bool use_pretrained) {
    core::RngEngine rng(23);
    auto encoder = std::make_shared<models::EGNN>(encoder_config(), rng);
    if (use_pretrained) {
      const nn::LoadReport report = nn::load_into_module(
          *encoder, pretrained_sd, /*strict=*/false, /*prefix=*/"encoder");
      std::printf("loaded %lld encoder parameters from checkpoint "
                  "(%lld skipped)\n",
                  static_cast<long long>(report.loaded),
                  static_cast<long long>(report.skipped));
    }
    tasks::ScalarRegressionTask task(encoder, "band_gap", head_config(), rng,
                                     stats);
    optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3, 1e-4);
    train::TrainerOptions topts;
    topts.max_epochs = epochs;
    const train::FitResult result =
        train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
    return result;
  };

  std::printf("\n=== from scratch ===\n");
  const train::FitResult scratch = run(false);
  std::printf("\n=== pretrained ===\n");
  const train::FitResult pretrained = run(true);

  std::printf("\n%8s %18s %18s\n", "epoch", "pretrained MAE", "scratch MAE");
  for (std::size_t e = 0; e < pretrained.epochs.size(); ++e) {
    std::printf("%8zu %18.4f %18.4f\n", e,
                pretrained.epochs[e].val.at("mae"),
                scratch.epochs[e].val.at("mae"));
  }
  std::printf("\nNote the paper's Fig. 5 shape: the pretrained run leads in\n"
              "the early epochs; given enough training the scratch run\n"
              "catches up and can finish ahead.\n");
  return 0;
}
