// Pretraining — the paper's synthetic symmetry-group task (§3.1/§5.2).
//
// Generates point clouds by replicating random seed particles under the
// operations of randomly chosen crystallographic point groups, trains an
// E(n)-GNN to classify the group (32 classes), and writes a checkpoint
// that finetune_bandgap can consume.
//
// Usage: pretrain_symmetry [checkpoint_path] [num_samples] [epochs]
//   defaults: pretrained_encoder.msck 1280 8
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/dataloader.hpp"
#include "models/egnn.hpp"
#include "nn/serialize.hpp"
#include "optim/adam.hpp"
#include "optim/lr_scheduler.hpp"
#include "sym/synthetic_dataset.hpp"
#include "tasks/classification.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
  using namespace matsci;
  const std::string ckpt_path =
      argc > 1 ? argv[1] : "pretrained_encoder.msck";
  const std::int64_t num_samples = argc > 2 ? std::atoll(argv[2]) : 1280;
  const std::int64_t epochs = argc > 3 ? std::atoll(argv[3]) : 8;

  // The synthetic dataset is generated lazily from (seed, index): any
  // size is available with zero storage, uniformly over the 32 classes.
  sym::SyntheticPointGroupOptions sym_opts;
  sym_opts.max_points = 24;
  sym::SyntheticPointGroupDataset dataset(num_samples, /*seed=*/17, sym_opts);
  auto [train_ds, val_ds] = data::train_val_split(dataset, 0.15, 3);
  std::printf("synthetic point-group dataset: %lld samples, %lld classes\n",
              static_cast<long long>(dataset.size()),
              static_cast<long long>(dataset.num_classes()));

  data::DataLoaderOptions loader_opts;
  loader_opts.batch_size = 32;
  loader_opts.seed = 5;
  // Pretraining uses the point-cloud representation: no imposed graph.
  loader_opts.collate.representation = data::Representation::kPointCloud;
  data::DataLoader train_loader(train_ds, loader_opts);
  data::DataLoaderOptions val_opts = loader_opts;
  val_opts.shuffle = false;
  data::DataLoader val_loader(val_ds, val_opts);

  core::RngEngine rng(11);
  models::EGNNConfig encoder_cfg;
  encoder_cfg.hidden_dim = 32;
  encoder_cfg.pos_hidden = 16;
  encoder_cfg.num_layers = 3;
  auto encoder = std::make_shared<models::EGNN>(encoder_cfg, rng);
  models::OutputHeadConfig head_cfg;
  head_cfg.hidden_dim = 32;
  head_cfg.num_blocks = 2;
  head_cfg.dropout = 0.0f;
  tasks::ClassificationTask task(encoder, "point_group",
                                 dataset.num_classes(), head_cfg, rng);

  // Paper §4.2 schedule: linear warmup then exponential decay (γ = 0.8).
  optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3);
  optim::WarmupExponential sched(opt, 3e-3, /*warmup_epochs=*/3, 0.8);

  train::TrainerOptions trainer_opts;
  trainer_opts.max_epochs = epochs;
  trainer_opts.verbose = true;
  const train::FitResult result = train::Trainer(trainer_opts)
                                      .fit(task, train_loader, &val_loader,
                                           opt, &sched);

  std::printf("\nfinal validation accuracy %.3f (chance %.3f), CE %.3f\n",
              result.epochs.back().val.at("accuracy"),
              1.0 / static_cast<double>(dataset.num_classes()),
              result.epochs.back().val.at("ce"));

  // Checkpoint the whole task; the encoder lives under the "encoder."
  // prefix and can be loaded alone for fine-tuning.
  nn::save_state_dict(nn::state_dict(task), ckpt_path);
  std::printf("checkpoint written to %s\n", ckpt_path.c_str());
  return 0;
}
