// Dataset cartography — the paper's §5.3 use case: embed structures
// from every supported dataset with a (pretrained) encoder, project with
// UMAP, and inspect where datasets overlap and where the gaps are, to
// decide what data a foundation model still needs.
//
// Usage: dataset_cartography [per_dataset] [csv_path]
//   defaults: 120 structures per dataset, cartography.csv
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "data/dataloader.hpp"
#include "core/ops.hpp"
#include "embed/cluster_metrics.hpp"
#include "embed/umap.hpp"
#include "materials/carolina.hpp"
#include "materials/lips.hpp"
#include "materials/materials_project.hpp"
#include "materials/ocp.hpp"
#include "models/egnn.hpp"
#include "optim/adam.hpp"
#include "sym/synthetic_dataset.hpp"
#include "tasks/classification.hpp"
#include "train/trainer.hpp"

namespace {

using namespace matsci;

core::Tensor embed_dataset(const models::EGNN& encoder,
                           const data::StructureDataset& ds) {
  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.shuffle = false;
  lo.collate.radius.cutoff = 5.0;
  data::DataLoader loader(ds, lo);
  core::NoGradGuard no_grad;
  std::vector<core::Tensor> parts;
  for (std::int64_t b = 0; b < loader.num_batches(); ++b) {
    parts.push_back(encoder.encode(loader.batch(b)));
  }
  return core::concat_rows(parts).detach();
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t per_dataset = argc > 1 ? std::atoll(argv[1]) : 120;
  const std::string csv_path = argc > 2 ? argv[2] : "cartography.csv";

  // Pretrain a small encoder on symmetry groups (the structural prior).
  std::printf("pretraining structural encoder on synthetic point groups...\n");
  sym::SyntheticPointGroupOptions sym_opts;
  sym_opts.max_points = 20;
  sym::SyntheticPointGroupDataset pre_ds(640, 17, sym_opts);
  data::DataLoaderOptions plo;
  plo.batch_size = 32;
  plo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader pre_loader(pre_ds, plo);
  core::RngEngine rng(11);
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 32;
  ecfg.pos_hidden = 16;
  ecfg.num_layers = 3;
  auto encoder = std::make_shared<models::EGNN>(ecfg, rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 32;
  hcfg.num_blocks = 2;
  hcfg.dropout = 0.0f;
  tasks::ClassificationTask pre_task(encoder, "point_group",
                                     sym::num_point_groups(), hcfg, rng);
  optim::Adam opt = optim::make_adamw(pre_task.parameters(), 3e-3);
  train::TrainerOptions topts;
  topts.max_epochs = 4;
  train::Trainer(topts).fit(pre_task, pre_loader, nullptr, opt);

  // Embed every dataset the toolkit supports.
  const std::vector<std::string> names = {"MaterialsProject", "Carolina",
                                          "LiPS", "OC20", "OC22"};
  std::vector<core::Tensor> blocks;
  std::printf("embedding %lld structures per dataset...\n",
              static_cast<long long>(per_dataset));
  blocks.push_back(embed_dataset(
      *encoder, materials::MaterialsProjectDataset(per_dataset, 1)));
  blocks.push_back(embed_dataset(
      *encoder, materials::CarolinaMaterialsDataset(per_dataset, 2)));
  blocks.push_back(
      embed_dataset(*encoder, materials::LiPSDataset(per_dataset, 3)));
  blocks.push_back(embed_dataset(
      *encoder,
      materials::OCPDataset(per_dataset, 4, materials::OCPFlavor::kOC20)));
  blocks.push_back(embed_dataset(
      *encoder,
      materials::OCPDataset(per_dataset, 5, materials::OCPFlavor::kOC22)));
  core::Tensor high = core::concat_rows(blocks).detach();
  std::vector<std::int64_t> labels;
  for (std::int64_t d = 0; d < 5; ++d) {
    for (std::int64_t i = 0; i < per_dataset; ++i) labels.push_back(d);
  }

  std::printf("projecting with UMAP...\n");
  embed::UMAPOptions uopts;
  uopts.n_neighbors = 25;
  uopts.min_dist = 0.05;
  uopts.n_epochs = 150;
  const embed::UMAPResult projection = embed::umap(high, uopts);

  // The cartography readout: who covers what.
  const auto stats = embed::cluster_stats(high, labels);
  std::printf("\n%-18s %10s %14s\n", "dataset", "count", "spread(high-d)");
  for (std::size_t d = 0; d < stats.size(); ++d) {
    std::printf("%-18s %10lld %14.3f\n", names[d].c_str(),
                static_cast<long long>(stats[d].count),
                stats[d].mean_radius);
  }
  std::printf("\npairwise 15-NN overlap (row dataset has a col neighbor):\n");
  std::printf("%-18s", "");
  for (const auto& n : names) std::printf(" %10s", n.substr(0, 10).c_str());
  std::printf("\n");
  for (std::size_t a = 0; a < names.size(); ++a) {
    std::printf("%-18s", names[a].c_str());
    for (std::size_t b = 0; b < names.size(); ++b) {
      if (a == b) {
        std::printf(" %10s", "-");
      } else {
        std::printf(" %10.2f",
                    embed::neighbor_overlap(projection.embedding, labels,
                                            static_cast<std::int64_t>(a),
                                            static_cast<std::int64_t>(b), 15));
      }
    }
    std::printf("\n");
  }

  std::ofstream csv(csv_path);
  csv << "x,y,dataset\n";
  for (std::int64_t i = 0; i < projection.embedding.size(0); ++i) {
    csv << projection.embedding.at(i, 0) << ","
        << projection.embedding.at(i, 1) << ","
        << names[static_cast<std::size_t>(
               labels[static_cast<std::size_t>(i)])]
        << "\n";
  }
  std::printf("\n2-D map written to %s (plot x,y colored by dataset)\n",
              csv_path.c_str());
  return 0;
}
