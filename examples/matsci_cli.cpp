// matsci_cli — command-line front end for the toolkit's data utilities.
//
//   matsci_cli generate <dataset> <count> <out.xyz> [seed]
//       Write samples of a simulated dataset (mp | carolina | lips |
//       oc20 | oc22 | sym) as extended XYZ, labels included.
//   matsci_cli detect <in.xyz> [tolerance]
//       Report the crystallographic point group of each frame
//       (classical detector; exact on clean clouds).
//   matsci_cli stats <dataset> <count> [seed]
//       Print per-target summary statistics for a dataset profile.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "data/transforms.hpp"
#include "materials/carolina.hpp"
#include "materials/lips.hpp"
#include "materials/materials_project.hpp"
#include "materials/ocp.hpp"
#include "materials/xyz.hpp"
#include "sym/detect.hpp"
#include "sym/synthetic_dataset.hpp"

namespace {

using namespace matsci;

std::unique_ptr<data::StructureDataset> make_dataset(const std::string& name,
                                                     std::int64_t count,
                                                     std::uint64_t seed) {
  if (name == "mp") {
    return std::make_unique<materials::MaterialsProjectDataset>(count, seed);
  }
  if (name == "carolina") {
    return std::make_unique<materials::CarolinaMaterialsDataset>(count, seed);
  }
  if (name == "lips") {
    return std::make_unique<materials::LiPSDataset>(count, seed);
  }
  if (name == "oc20") {
    return std::make_unique<materials::OCPDataset>(count, seed,
                                                   materials::OCPFlavor::kOC20);
  }
  if (name == "oc22") {
    return std::make_unique<materials::OCPDataset>(count, seed,
                                                   materials::OCPFlavor::kOC22);
  }
  if (name == "sym") {
    return std::make_unique<sym::SyntheticPointGroupDataset>(count, seed);
  }
  std::fprintf(stderr,
               "unknown dataset '%s' (mp|carolina|lips|oc20|oc22|sym)\n",
               name.c_str());
  return nullptr;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: matsci_cli generate <dataset> <count> <out.xyz> "
                 "[seed]\n");
    return 2;
  }
  const std::string name = argv[1];
  const std::int64_t count = std::atoll(argv[2]);
  const std::string out = argv[3];
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;
  auto ds = make_dataset(name, count, seed);
  if (!ds) return 2;
  std::vector<data::StructureSample> samples;
  samples.reserve(static_cast<std::size_t>(ds->size()));
  for (std::int64_t i = 0; i < ds->size(); ++i) {
    auto s = ds->get(i);
    s.forces.clear();  // not part of the XYZ contract
    samples.push_back(std::move(s));
  }
  materials::write_xyz_file(out, samples);
  std::printf("wrote %lld frames of %s to %s\n",
              static_cast<long long>(samples.size()), ds->name().c_str(),
              out.c_str());
  return 0;
}

int cmd_detect(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: matsci_cli detect <in.xyz> [tolerance]\n");
    return 2;
  }
  const double tolerance = argc > 2 ? std::atof(argv[2]) : 0.05;
  const auto frames = materials::read_xyz_file(argv[1]);
  std::printf("%8s %8s %12s %10s\n", "frame", "atoms", "point group",
              "|G|");
  for (std::size_t f = 0; f < frames.size(); ++f) {
    sym::DetectionOptions opts;
    opts.tolerance = tolerance;
    const sym::DetectionResult det =
        sym::detect_point_group(frames[f].positions, opts);
    std::printf("%8zu %8lld %12s %10zu\n", f,
                static_cast<long long>(frames[f].num_atoms()),
                det.name.c_str(), det.matched_operations);
  }
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: matsci_cli stats <dataset> <count> [seed]\n");
    return 2;
  }
  const std::string name = argv[1];
  const std::int64_t count = std::atoll(argv[2]);
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
  auto ds = make_dataset(name, count, seed);
  if (!ds) return 2;
  std::printf("dataset %s: %lld samples\n", ds->name().c_str(),
              static_cast<long long>(ds->size()));
  const auto first = ds->get(0);
  double mean_atoms = 0.0;
  for (std::int64_t i = 0; i < ds->size(); ++i) {
    mean_atoms += static_cast<double>(ds->get(i).num_atoms());
  }
  std::printf("  atoms/structure: %.1f (mean)\n",
              mean_atoms / static_cast<double>(ds->size()));
  for (const auto& [key, _] : first.scalar_targets) {
    const data::TargetStats stats = data::compute_target_stats(*ds, key);
    std::printf("  %-20s mean %10.4f  std %10.4f\n", key.c_str(), stats.mean,
                stats.stddev);
  }
  for (const auto& [key, _] : first.class_targets) {
    std::map<std::int64_t, std::int64_t> counts;
    for (std::int64_t i = 0; i < ds->size(); ++i) {
      ++counts[ds->get(i).class_targets.at(key)];
    }
    std::printf("  %-20s", key.c_str());
    for (const auto& [label, c] : counts) {
      std::printf(" %lld:%lld", static_cast<long long>(label),
                  static_cast<long long>(c));
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: matsci_cli <generate|detect|stats> ...\n"
                 "  generate <dataset> <count> <out.xyz> [seed]\n"
                 "  detect <in.xyz> [tolerance]\n"
                 "  stats <dataset> <count> [seed]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "generate") return cmd_generate(argc - 1, argv + 1);
  if (cmd == "detect") return cmd_detect(argc - 1, argv + 1);
  if (cmd == "stats") return cmd_stats(argc - 1, argv + 1);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
