// Quickstart — train a band-gap regressor on (simulated) Materials
// Project data in ~30 lines of library calls.
//
//   dataset -> split -> loaders -> E(n)-GNN encoder -> regression task
//   -> AdamW -> Trainer.fit -> validation MAE
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "data/dataloader.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "optim/adam.hpp"
#include "tasks/regression.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace matsci;

  // 1. A procedurally generated Materials Project profile (see DESIGN.md
  //    for what "simulated" means) and a reproducible 80/20 split.
  materials::MaterialsProjectDataset dataset(/*size=*/400, /*seed=*/2024);
  auto [train_ds, val_ds] = data::train_val_split(dataset, 0.2, /*seed=*/1);

  // 2. Loaders: periodic radius-graph conversion at a 4.5 Å cutoff.
  data::DataLoaderOptions loader_opts;
  loader_opts.batch_size = 16;
  loader_opts.seed = 7;
  loader_opts.collate.radius.cutoff = 4.5;
  data::DataLoader train_loader(train_ds, loader_opts);
  data::DataLoaderOptions val_opts = loader_opts;
  val_opts.shuffle = false;
  data::DataLoader val_loader(val_ds, val_opts);

  // 3. Model: E(n)-equivariant GNN encoder + residual-MLP output head,
  //    with the target z-normalized by training-set statistics.
  core::RngEngine rng(42);
  models::EGNNConfig encoder_cfg;
  encoder_cfg.hidden_dim = 64;
  encoder_cfg.pos_hidden = 16;
  encoder_cfg.num_layers = 3;
  auto encoder = std::make_shared<models::EGNN>(encoder_cfg, rng);

  models::OutputHeadConfig head_cfg;
  head_cfg.hidden_dim = 64;
  head_cfg.num_blocks = 2;
  const data::TargetStats stats =
      data::compute_target_stats(train_ds, "band_gap");
  tasks::ScalarRegressionTask task(encoder, "band_gap", head_cfg, rng, stats);
  std::printf("model: %lld parameters, target band_gap (mean %.2f eV, "
              "std %.2f eV)\n",
              static_cast<long long>(task.num_parameters()), stats.mean,
              stats.stddev);

  // 4. Train with AdamW and report per-epoch validation MAE.
  optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3, 1e-4);
  train::TrainerOptions trainer_opts;
  trainer_opts.max_epochs = 10;
  trainer_opts.verbose = true;
  const train::FitResult result =
      train::Trainer(trainer_opts).fit(task, train_loader, &val_loader, opt);

  std::printf("\nfinal validation MAE: %.3f eV  (predicting the dataset "
              "mean would give ~%.3f eV)\n",
              result.epochs.back().val.at("mae"), 0.8 * stats.stddev);
  std::printf("training throughput: %.0f structures/s\n",
              result.samples_per_second());
  return 0;
}
