// Tests for the live telemetry plane (src/obs/http + src/obs/context):
// TraceContext mint/child semantics, the telemetry server's endpoints
// (/metrics validator round-trip with exemplars, /healthz status
// flipping, /statusz and /tracez as strict JSON), concurrent scrapes
// while registry shards mutate, and end-to-end trace-id continuity
// through the serving stack (admission -> queue wait -> batch ->
// forward) including shed outcomes and the flight-recorder in-flight
// section. Label `obs_http`; the CI matrix runs it under TSan and
// ASan, and the obs-off stage expects every test to skip cleanly.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/macros.hpp"
#include "core/parallel/thread_pool.hpp"
#include "materials/materials_project.hpp"
#include "obs/obs.hpp"
#include "serve/serve.hpp"

namespace matsci::obs {
namespace {

using http::HttpResponse;
using http::TelemetryServer;
using http::TelemetryServerOptions;

/// Every test in this suite exercises compiled-in behavior; under
/// -DMATSCI_OBS=OFF the whole label reduces to skips (the obs-off CI
/// stage runs it to prove exactly that).
#define SKIP_IF_OBS_OFF()                                            \
  if (!TelemetryServer::compiled_in()) {                             \
    GTEST_SKIP() << "obs compiled out (MATSCI_OBS=OFF)";             \
  }

/// Inference-only task: echoes the within-batch index, optional delay.
class EchoTask : public tasks::Task {
 public:
  explicit EchoTask(std::chrono::milliseconds delay = {}) : delay_(delay) {}

  tasks::TaskOutput step(const data::Batch&) const override {
    throw matsci::Error("EchoTask is inference-only");
  }
  std::shared_ptr<models::Encoder> encoder() const override {
    return nullptr;
  }
  std::vector<tasks::Prediction> predict_batch(
      const data::Batch& batch, const std::string& target) const override {
    MATSCI_CHECK(target == "echo", "unknown target " << target);
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    std::vector<tasks::Prediction> out(
        static_cast<std::size_t>(batch.num_graphs()));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].value = static_cast<float>(i);
    }
    return out;
  }

 private:
  std::chrono::milliseconds delay_;
};

std::shared_ptr<serve::InferenceSession> echo_session(
    std::chrono::milliseconds delay = {}) {
  serve::InferenceSessionOptions opts;
  opts.collate.radius.cutoff = 4.5;
  return std::make_shared<serve::InferenceSession>(
      std::make_shared<EchoTask>(delay), opts);
}

data::StructureSample one_sample(std::uint64_t seed = 7) {
  materials::MaterialsProjectDataset ds(4, seed);
  return ds.get(0);
}

/// Spans collected since the caller's clear(), filtered by trace id.
std::vector<TraceEvent> spans_of_trace(std::uint64_t trace_id) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : Tracer::global().collect()) {
    if (ev.trace_id == trace_id) out.push_back(ev);
  }
  return out;
}

bool has_span(const std::vector<TraceEvent>& spans, const char* name) {
  for (const TraceEvent& ev : spans) {
    if (std::string(ev.name) == name) return true;
  }
  return false;
}

// --- TraceContext ------------------------------------------------------------

TEST(TraceContext, MintProducesUniqueNonZeroIds) {
  SKIP_IF_OBS_OFF();
  std::set<std::uint64_t> traces;
  std::set<std::uint64_t> spans;
  for (int i = 0; i < 1000; ++i) {
    const TraceContext ctx = TraceContext::mint();
    EXPECT_TRUE(ctx.valid());
    EXPECT_NE(ctx.trace_id(), 0u);
    EXPECT_NE(ctx.span_id(), 0u);
    EXPECT_EQ(ctx.parent_span_id(), 0u);  // root
    traces.insert(ctx.trace_id());
    spans.insert(ctx.span_id());
  }
  EXPECT_EQ(traces.size(), 1000u);
  EXPECT_EQ(spans.size(), 1000u);
}

TEST(TraceContext, ChildKeepsTraceAndLinksParent) {
  SKIP_IF_OBS_OFF();
  const TraceContext root = TraceContext::mint();
  const TraceContext child = root.child();
  const TraceContext grandchild = child.child();
  EXPECT_EQ(child.trace_id(), root.trace_id());
  EXPECT_EQ(grandchild.trace_id(), root.trace_id());
  EXPECT_NE(child.span_id(), root.span_id());
  EXPECT_EQ(child.parent_span_id(), root.span_id());
  EXPECT_EQ(grandchild.parent_span_id(), child.span_id());
}

TEST(TraceContext, HexRenderingIsFixedWidthLowercase) {
  EXPECT_EQ(trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(trace_id_hex(0xABCDEFull), "0000000000abcdef");
  EXPECT_EQ(trace_id_hex(~0ull), "ffffffffffffffff");
}

TEST(TraceContext, RecordSpanCarriesIdsIntoTracer) {
  SKIP_IF_OBS_OFF();
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  const TraceContext ctx = TraceContext::mint();
  record_span("test/span", span_clock_ns(), 42, ctx);
  record_span("test/override", span_clock_ns(), 7, ctx, 0xBEEF);
  tracer.set_enabled(false);

  const std::vector<TraceEvent> spans = spans_of_trace(ctx.trace_id());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(has_span(spans, "test/span"));
  EXPECT_TRUE(has_span(spans, "test/override"));
  for (const TraceEvent& ev : spans) {
    EXPECT_EQ(ev.trace_id, ctx.trace_id());
    EXPECT_EQ(ev.span_id, ctx.span_id());
    if (std::string(ev.name) == "test/span") {
      EXPECT_EQ(ev.parent_span_id, ctx.parent_span_id());
    } else {
      EXPECT_EQ(ev.parent_span_id, 0xBEEFu);  // explicit override wins
    }
  }
}

TEST(InflightSetTest, InsertEraseSnapshot) {
  SKIP_IF_OBS_OFF();
  InflightSet& set = InflightSet::global();
  const std::size_t before = set.size();
  const TraceContext a = TraceContext::mint();
  const TraceContext b = TraceContext::mint();
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), before + 2);
  bool found_a = false;
  for (const TraceContext& ctx : set.snapshot()) {
    if (ctx.trace_id() == a.trace_id()) found_a = true;
  }
  EXPECT_TRUE(found_a);
  set.erase(a);
  set.erase(b);
  EXPECT_EQ(set.size(), before);
  set.erase(a);  // double-erase is a no-op
  EXPECT_EQ(set.size(), before);
}

// --- Histogram exemplars -----------------------------------------------------

TEST(Exemplars, SurviveSnapshotAndPrometheusRoundTrip) {
  SKIP_IF_OBS_OFF();
  Histogram& hist =
      MetricsRegistry::global().histogram("test.exemplar_us");
  hist.reset();
  const TraceContext ctx = TraceContext::mint();
  hist.observe(123.0);                    // untraced: no exemplar
  hist.observe(456.0, ctx.trace_id());    // traced: recorded
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.exemplar_trace_id, ctx.trace_id());
  EXPECT_DOUBLE_EQ(snap.exemplar_value, 456.0);

  const std::string text =
      prometheus_text(MetricsRegistry::global().snapshot());
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(text, &error)) << error;
  EXPECT_NE(text.find("# {trace_id=\"" + trace_id_hex(ctx.trace_id()) +
                      "\"} 456"),
            std::string::npos)
      << "exemplar missing from +Inf bucket line";
}

// --- TelemetryServer lifecycle ----------------------------------------------

TEST(TelemetryServerTest, CompiledOutOrEphemeralPortLifecycle) {
  TelemetryServer server;
  if (!TelemetryServer::compiled_in()) {
    // OFF contract: start() refuses, nothing listens, stop() is safe.
    EXPECT_FALSE(server.start());
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), -1);
    server.stop();
    return;
  }
  ASSERT_TRUE(server.start()) << server.last_error();
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
  server.stop();  // idempotent
}

TEST(TelemetryServerTest, IndexAndNotFound) {
  SKIP_IF_OBS_OFF();
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const HttpResponse index = http::http_get("127.0.0.1", server.port(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  const HttpResponse missing =
      http::http_get("127.0.0.1", server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_GE(server.requests_served(), 2);
  server.stop();
}

TEST(TelemetryServerTest, ClientReportsTransportFailure) {
  SKIP_IF_OBS_OFF();
  // Grab an ephemeral port, then close it: nothing listens there.
  int dead_port = 0;
  {
    TelemetryServer probe;
    ASSERT_TRUE(probe.start()) << probe.last_error();
    dead_port = probe.port();
    probe.stop();
  }
  const HttpResponse resp =
      http::http_get("127.0.0.1", dead_port, "/metrics", 500);
  EXPECT_EQ(resp.status, 0);
  EXPECT_FALSE(resp.body.empty());
}

// --- /metrics ----------------------------------------------------------------

TEST(TelemetryServerTest, MetricsScrapeIsValidatorClean) {
  SKIP_IF_OBS_OFF();
  MetricsRegistry::global().counter("test.http.scrape_counter").add(3);
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const HttpResponse resp =
      http::http_get("127.0.0.1", server.port(), "/metrics");
  server.stop();
  ASSERT_EQ(resp.status, 200);
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(resp.body, &error)) << error;
  EXPECT_NE(resp.body.find("matsci_test_http_scrape_counter"),
            std::string::npos);
}

TEST(TelemetryServerTest, ConcurrentScrapesWhileShardsMutate) {
  SKIP_IF_OBS_OFF();
  // Start the server BEFORE occupying pool slots (header contract).
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();

  // Mutators on the pool hammer the sharded registry while the test
  // thread scrapes repeatedly; every scrape must stay validator-clean.
  std::atomic<bool> stop{false};
  core::parallel::ThreadPool& pool = core::parallel::ThreadPool::global();
  std::vector<core::parallel::TaskHandle> mutators;
  for (int i = 0; i < 2; ++i) {
    mutators.push_back(pool.submit([&stop] {
      Counter& c = MetricsRegistry::global().counter("test.http.churn");
      Histogram& h =
          MetricsRegistry::global().histogram("test.http.churn_us");
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.add(1);
        h.observe(static_cast<double>(n % 1000),
                  TraceContext::mint().trace_id());
        ++n;
      }
    }));
  }

  int valid = 0;
  for (int i = 0; i < 20; ++i) {
    const HttpResponse resp =
        http::http_get("127.0.0.1", server.port(), "/metrics");
    ASSERT_EQ(resp.status, 200);
    std::string error;
    ASSERT_TRUE(validate_prometheus_text(resp.body, &error))
        << "scrape " << i << ": " << error;
    ++valid;
  }
  stop.store(true, std::memory_order_relaxed);
  for (core::parallel::TaskHandle& m : mutators) m.run_now_or_wait();
  server.stop();
  EXPECT_EQ(valid, 20);
}

// --- /healthz ----------------------------------------------------------------

TEST(TelemetryServerTest, HealthzFlipsTo503) {
  SKIP_IF_OBS_OFF();
  TelemetryServer server;
  std::atomic<bool> healthy{true};
  server.set_health_source([&healthy] {
    http::HealthState state;
    state.healthy = healthy.load();
    state.detail = state.healthy ? "ok" : "anomaly storm";
    state.anomalies = state.healthy ? 0 : 12;
    return state;
  });
  ASSERT_TRUE(server.start()) << server.last_error();

  HttpResponse resp = http::http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(resp.status, 200);
  std::string error;
  EXPECT_TRUE(validate_json(resp.body, &error)) << error;
  EXPECT_NE(resp.body.find("\"healthy\":true"), std::string::npos);

  healthy.store(false);
  resp = http::http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(resp.status, 503);
  EXPECT_TRUE(validate_json(resp.body, &error)) << error;
  EXPECT_NE(resp.body.find("\"anomalies\":12"), std::string::npos);
  server.stop();
}

// --- /statusz ----------------------------------------------------------------

TEST(TelemetryServerTest, StatuszIsStrictJsonWithSections) {
  SKIP_IF_OBS_OFF();
  TelemetryServer server;
  server.add_statusz_section("frontend", [] {
    return JsonRecord().set("admitted", 42).set("shed", 3).str();
  });
  server.add_statusz_section("broken", []() -> std::string {
    throw matsci::Error("renderer exploded");
  });
  server.add_statusz_section("malformed", [] {
    return std::string("{not json");
  });
  ASSERT_TRUE(server.start()) << server.last_error();
  const HttpResponse resp =
      http::http_get("127.0.0.1", server.port(), "/statusz");
  server.stop();
  ASSERT_EQ(resp.status, 200);
  std::string error;
  ASSERT_TRUE(validate_json(resp.body, &error)) << error;
  EXPECT_NE(resp.body.find("\"admitted\":42"), std::string::npos);
  // Throwing/invalid renderers degrade to null, never break the scrape.
  EXPECT_NE(resp.body.find("\"broken\":null"), std::string::npos);
  EXPECT_NE(resp.body.find("\"malformed\":null"), std::string::npos);
}

// --- /tracez -----------------------------------------------------------------

TEST(TelemetryServerTest, TracezShowsHexTraceIds) {
  SKIP_IF_OBS_OFF();
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  const TraceContext ctx = TraceContext::mint();
  record_span("tracez/unit", span_clock_ns(), 1000, ctx);
  tracer.set_enabled(false);

  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const HttpResponse resp =
      http::http_get("127.0.0.1", server.port(), "/tracez");
  server.stop();
  ASSERT_EQ(resp.status, 200);
  std::string error;
  ASSERT_TRUE(validate_json(resp.body, &error)) << error;
  EXPECT_NE(resp.body.find("tracez/unit"), std::string::npos);
  EXPECT_NE(resp.body.find(trace_id_hex(ctx.trace_id())),
            std::string::npos);
}

// --- End-to-end propagation through the serving stack ------------------------

TEST(TracePropagation, FrontendToForwardSharesOneTraceId) {
  SKIP_IF_OBS_OFF();
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  serve::frontend::ServeFrontend frontend;
  serve::SchedulerOptions sopts;
  sopts.num_workers = 1;
  frontend.deploy("echo_model", 1, echo_session(), sopts);

  serve::frontend::SubmitOutcome out =
      frontend.submit("echo_model", one_sample(), "echo");
  ASSERT_EQ(out.status, serve::frontend::SubmitStatus::kAccepted);
  ASSERT_TRUE(out.trace.valid());
  out.future.get();
  frontend.retire("echo_model");
  tracer.set_enabled(false);

  const std::vector<TraceEvent> spans = spans_of_trace(out.trace.trace_id());
  EXPECT_TRUE(has_span(spans, "serve/stage/admission"));
  EXPECT_TRUE(has_span(spans, "serve/stage/queue_wait"));
  EXPECT_TRUE(has_span(spans, "serve/stage/forward"));
  EXPECT_TRUE(has_span(spans, "serve/batch"));

  // Batch linkage: the forward span's parent is the batch span, which
  // is a child context within the same trace.
  std::uint64_t batch_span = 0;
  for (const TraceEvent& ev : spans) {
    if (std::string(ev.name) == "serve/batch") batch_span = ev.span_id;
  }
  ASSERT_NE(batch_span, 0u);
  for (const TraceEvent& ev : spans) {
    if (std::string(ev.name) == "serve/stage/forward") {
      EXPECT_EQ(ev.parent_span_id, batch_span);
      EXPECT_EQ(ev.span_id, out.trace.span_id());
    }
  }

  // Fulfilled: the request must have left the in-flight set.
  for (const TraceContext& inflight : InflightSet::global().snapshot()) {
    EXPECT_NE(inflight.trace_id(), out.trace.trace_id());
  }
}

TEST(TracePropagation, CacheHitRecordsCacheStageSpan) {
  SKIP_IF_OBS_OFF();
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  serve::frontend::ServeFrontend frontend;
  serve::SchedulerOptions sopts;
  sopts.num_workers = 1;
  frontend.deploy("echo_model", 1, echo_session(), sopts);
  const data::StructureSample sample = one_sample();

  serve::frontend::SubmitOutcome first =
      frontend.submit("echo_model", sample, "echo");
  ASSERT_EQ(first.status, serve::frontend::SubmitStatus::kAccepted);
  first.future.get();

  serve::frontend::SubmitOutcome second =
      frontend.submit("echo_model", sample, "echo");
  ASSERT_EQ(second.status, serve::frontend::SubmitStatus::kCacheHit);
  ASSERT_TRUE(second.trace.valid());
  EXPECT_NE(second.trace.trace_id(), first.trace.trace_id());
  frontend.retire("echo_model");
  tracer.set_enabled(false);

  EXPECT_TRUE(has_span(spans_of_trace(second.trace.trace_id()),
                       "serve/stage/cache"));
}

TEST(TracePropagation, ShedOutcomeCarriesTraceAndShedSpan) {
  SKIP_IF_OBS_OFF();
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  serve::frontend::ServeFrontend frontend;
  serve::SchedulerOptions sopts;
  sopts.num_workers = 1;
  sopts.max_batch_size = 1;
  sopts.max_wait_us = 0;
  sopts.queue_capacity = 1;
  frontend.deploy("echo_model", 1,
                  echo_session(std::chrono::milliseconds(100)), sopts);

  // First request occupies the single worker; keep submitting until one
  // queues behind it and admission sheds on the depth share.
  std::vector<serve::frontend::SubmitOutcome> accepted;
  serve::frontend::SubmitOutcome shed;
  serve::frontend::FrontendRequestOptions ropts;
  ropts.use_cache = false;
  for (int i = 0; i < 200; ++i) {
    serve::frontend::SubmitOutcome out =
        frontend.submit("echo_model", one_sample(i), "echo", ropts);
    if (out.shed()) {
      shed = std::move(out);
      break;
    }
    ASSERT_EQ(out.status, serve::frontend::SubmitStatus::kAccepted);
    accepted.push_back(std::move(out));
  }
  ASSERT_TRUE(shed.shed()) << "overload never triggered a shed";
  EXPECT_TRUE(shed.trace.valid());
  EXPECT_GT(shed.retry_after_us, 0.0);

  for (serve::frontend::SubmitOutcome& out : accepted) out.future.get();
  frontend.retire("echo_model");
  tracer.set_enabled(false);

  EXPECT_TRUE(
      has_span(spans_of_trace(shed.trace.trace_id()), "serve/stage/shed"));
  // Shed requests never enter the in-flight set.
  for (const TraceContext& inflight : InflightSet::global().snapshot()) {
    EXPECT_NE(inflight.trace_id(), shed.trace.trace_id());
  }
}

TEST(TracePropagation, AdmissionDecisionEchoesTraceId) {
  SKIP_IF_OBS_OFF();
  serve::frontend::AdmissionController admission({}, 8, 1);
  const TraceContext ctx = TraceContext::mint();
  const serve::frontend::AdmissionDecision d =
      admission.decide(serve::Priority::kStandard, 0, 0, ctx.trace_id());
  EXPECT_TRUE(d.admitted());
  EXPECT_EQ(d.trace_id, ctx.trace_id());
}

// --- FlightRecorder in-flight section ---------------------------------------

TEST(FlightRecorderInflight, BundleNamesInFlightTraceIds) {
  SKIP_IF_OBS_OFF();
  const TraceContext ctx = TraceContext::mint();
  InflightSet::global().insert(ctx);

  health::FlightRecorder rec(4);
  const std::string path =
      ::testing::TempDir() + "flight_inflight_test.json";
  rec.dump(path, "unit-test");
  InflightSet::global().erase(ctx);

  std::ifstream is(path);
  ASSERT_TRUE(is.is_open());
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string bundle = ss.str();
  std::string error;
  EXPECT_TRUE(validate_json(bundle, &error)) << error;
  EXPECT_NE(bundle.find("\"inflight\""), std::string::npos);
  EXPECT_NE(bundle.find(trace_id_hex(ctx.trace_id())), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace matsci::obs
