// Property-based sweeps: invariants that must hold across the whole
// configuration space, exercised with parameterized gtest suites —
// encoder E(3) invariance for every architecture and topology, loader
// partition laws for every (batch, world) shape, optimizer descent for
// every optimizer family, and oracle-label consistency across dataset
// regenerations.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/macros.hpp"
#include "core/ops.hpp"
#include "data/dataloader.hpp"
#include "materials/materials_project.hpp"
#include "models/attention.hpp"
#include "models/egnn.hpp"
#include "models/schnet.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "sym/symop.hpp"
#include "sym/synthetic_dataset.hpp"
#include "test_util.hpp"

namespace matsci {
namespace {

using core::RngEngine;
using core::Tensor;

// --- encoder invariance across architectures × representations × seeds ----

enum class EncoderKind { kEgnn, kSchNet, kAttention };

struct InvarianceCase {
  EncoderKind kind;
  data::Representation representation;
  std::uint64_t seed;
};

std::string invariance_name(
    const ::testing::TestParamInfo<InvarianceCase>& info) {
  std::string name;
  switch (info.param.kind) {
    case EncoderKind::kEgnn: name = "Egnn"; break;
    case EncoderKind::kSchNet: name = "SchNet"; break;
    case EncoderKind::kAttention: name = "Attention"; break;
  }
  name += info.param.representation == data::Representation::kPointCloud
              ? "Cloud"
              : "Radius";
  name += "Seed" + std::to_string(info.param.seed);
  return name;
}

std::shared_ptr<models::Encoder> make_encoder(EncoderKind kind,
                                              RngEngine& rng) {
  switch (kind) {
    case EncoderKind::kEgnn: {
      models::EGNNConfig cfg;
      cfg.hidden_dim = 12;
      cfg.pos_hidden = 6;
      cfg.num_layers = 2;
      return std::make_shared<models::EGNN>(cfg, rng);
    }
    case EncoderKind::kSchNet: {
      models::SchNetConfig cfg;
      cfg.hidden_dim = 12;
      cfg.num_interactions = 2;
      cfg.num_rbf = 6;
      return std::make_shared<models::SchNet>(cfg, rng);
    }
    case EncoderKind::kAttention: {
      models::PointCloudAttentionConfig cfg;
      cfg.hidden_dim = 12;
      cfg.num_layers = 2;
      cfg.num_rbf = 6;
      return std::make_shared<models::PointCloudAttentionEncoder>(cfg, rng);
    }
  }
  return nullptr;
}

class EncoderInvarianceTest
    : public ::testing::TestWithParam<InvarianceCase> {};

TEST_P(EncoderInvarianceTest, EmbeddingInvariantUnderE3) {
  const InvarianceCase& tc = GetParam();
  RngEngine rng(tc.seed);

  data::StructureSample s;
  for (int i = 0; i < 7; ++i) {
    s.species.push_back(1 + rng.next_int(10));
    s.positions.push_back(
        {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)});
  }
  s.scalar_targets["y"] = 0.0f;
  data::CollateOptions copts;
  copts.representation = tc.representation;
  copts.radius.cutoff = 3.0;
  data::Batch batch = data::collate({s}, copts);

  RngEngine model_rng(tc.seed ^ 0xE3ull);
  auto encoder = make_encoder(tc.kind, model_rng);
  Tensor before = encoder->encode(batch);

  const core::Mat3 op = sym::rotation(
      {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1) + 2.0},
      rng.uniform(0.1, 3.0));
  const core::Vec3 shift = {rng.uniform(-3, 3), rng.uniform(-3, 3),
                            rng.uniform(-3, 3)};
  data::Batch moved = batch;
  moved.coords = batch.coords.clone();
  for (std::int64_t i = 0; i < batch.coords.size(0); ++i) {
    const core::Vec3 p = {batch.coords.at(i, 0), batch.coords.at(i, 1),
                          batch.coords.at(i, 2)};
    const core::Vec3 q = core::matvec(op, p) + shift;
    for (int c = 0; c < 3; ++c) {
      moved.coords.set(i, c, static_cast<float>(q[c]));
    }
  }
  // NOTE: the topology is rebuilt identically because E(3) maps preserve
  // pairwise distances; reuse of `batch.topology` is exact.
  Tensor after = encoder->encode(moved);
  EXPECT_LT(matsci::testing::max_abs_diff(before, after), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    AllEncoders, EncoderInvarianceTest,
    ::testing::Values(
        InvarianceCase{EncoderKind::kEgnn, data::Representation::kPointCloud, 1},
        InvarianceCase{EncoderKind::kEgnn, data::Representation::kRadiusGraph, 2},
        InvarianceCase{EncoderKind::kEgnn, data::Representation::kPointCloud, 3},
        InvarianceCase{EncoderKind::kSchNet, data::Representation::kPointCloud, 1},
        InvarianceCase{EncoderKind::kSchNet, data::Representation::kRadiusGraph, 2},
        InvarianceCase{EncoderKind::kSchNet, data::Representation::kPointCloud, 3},
        InvarianceCase{EncoderKind::kAttention, data::Representation::kPointCloud, 1},
        InvarianceCase{EncoderKind::kAttention, data::Representation::kRadiusGraph, 2},
        InvarianceCase{EncoderKind::kAttention, data::Representation::kPointCloud, 3}),
    invariance_name);

// --- loader partition laws across (batch_size, world_size) -----------------

struct ShardCase {
  std::int64_t batch_size;
  std::int64_t world_size;
  bool drop_last;
};

class LoaderShardTest : public ::testing::TestWithParam<ShardCase> {};

TEST_P(LoaderShardTest, ShardsPartitionTheDataset) {
  const auto& [batch_size, world_size, drop_last] = GetParam();
  const std::int64_t n = 37;  // deliberately not divisible by anything
  materials::MaterialsProjectDataset ds(n, 5);

  std::multiset<float> seen;
  std::int64_t total_batches = 0;
  for (std::int64_t rank = 0; rank < world_size; ++rank) {
    data::DataLoaderOptions opts;
    opts.batch_size = batch_size;
    opts.seed = 11;
    opts.rank = rank;
    opts.world_size = world_size;
    opts.drop_last = drop_last;
    opts.collate.radius.cutoff = 4.0;
    data::DataLoader loader(ds, opts);
    total_batches += loader.num_batches();
    for (std::int64_t b = 0; b < loader.num_batches(); ++b) {
      const data::Batch batch = loader.batch(b);
      EXPECT_LE(batch.num_graphs(), batch_size);
      if (drop_last) EXPECT_EQ(batch.num_graphs(), batch_size);
      const Tensor& gaps = batch.scalar_targets.at("band_gap");
      for (std::int64_t g = 0; g < gaps.size(0); ++g) {
        seen.insert(gaps.at(g, 0));
      }
    }
  }
  // Without drop_last, every sample appears exactly once across shards.
  if (!drop_last) {
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), n);
    for (const float v : seen) {
      EXPECT_EQ(seen.count(v), 1u);
    }
  } else {
    EXPECT_LE(static_cast<std::int64_t>(seen.size()), n);
  }
  EXPECT_GT(total_batches, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LoaderShardTest,
    ::testing::Values(ShardCase{1, 1, false}, ShardCase{5, 1, false},
                      ShardCase{5, 2, false}, ShardCase{4, 3, false},
                      ShardCase{8, 4, false}, ShardCase{37, 1, false},
                      ShardCase{5, 2, true}, ShardCase{4, 4, true}));

// --- optimizer descent across families and options --------------------------

struct OptimizerCase {
  const char* name;
  std::function<std::unique_ptr<optim::Optimizer>(std::vector<Tensor>)> make;
};

class OptimizerDescentTest : public ::testing::TestWithParam<OptimizerCase> {};

TEST_P(OptimizerDescentTest, ReducesConvexObjective) {
  RngEngine rng(3);
  Tensor x = Tensor::randn({8}, rng, 0.0f, 3.0f);
  x.set_requires_grad(true);
  auto opt = GetParam().make({x});
  const double initial = core::sum(core::square(x)).item();
  for (int i = 0; i < 60; ++i) {
    opt->zero_grad();
    core::sum(core::square(x)).backward();
    opt->step();
  }
  const double final_value = core::sum(core::square(x)).item();
  EXPECT_LT(final_value, 0.25 * initial) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, OptimizerDescentTest,
    ::testing::Values(
        OptimizerCase{"sgd",
                      [](std::vector<Tensor> p) -> std::unique_ptr<optim::Optimizer> {
                        return std::make_unique<optim::SGD>(
                            std::move(p), optim::SGDOptions{.lr = 0.05});
                      }},
        OptimizerCase{"sgd_momentum",
                      [](std::vector<Tensor> p) -> std::unique_ptr<optim::Optimizer> {
                        return std::make_unique<optim::SGD>(
                            std::move(p),
                            optim::SGDOptions{.lr = 0.02, .momentum = 0.9});
                      }},
        OptimizerCase{"sgd_nesterov",
                      [](std::vector<Tensor> p) -> std::unique_ptr<optim::Optimizer> {
                        return std::make_unique<optim::SGD>(
                            std::move(p),
                            optim::SGDOptions{.lr = 0.02,
                                              .momentum = 0.9,
                                              .nesterov = true});
                      }},
        OptimizerCase{"adam",
                      [](std::vector<Tensor> p) -> std::unique_ptr<optim::Optimizer> {
                        return std::make_unique<optim::Adam>(
                            std::move(p), optim::AdamOptions{.lr = 0.2});
                      }},
        OptimizerCase{"adamw",
                      [](std::vector<Tensor> p) -> std::unique_ptr<optim::Optimizer> {
                        return std::make_unique<optim::Adam>(
                            std::move(p),
                            optim::AdamOptions{.lr = 0.2,
                                               .weight_decay = 1e-3,
                                               .decoupled_weight_decay = true});
                      }},
        OptimizerCase{"adam_large_eps",
                      [](std::vector<Tensor> p) -> std::unique_ptr<optim::Optimizer> {
                        return std::make_unique<optim::Adam>(
                            std::move(p),
                            optim::AdamOptions{.lr = 0.2, .eps = 1e-3});
                      }}),
    [](const auto& info) { return std::string(info.param.name); });

// --- dataset regeneration invariance ----------------------------------------

class DatasetSizeInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetSizeInvarianceTest, SampleIndependentOfDatasetSize) {
  // Lazily generated datasets must give the same sample for the same
  // index regardless of total size (index-keyed streams, DESIGN.md).
  const std::int64_t index = GetParam();
  materials::MaterialsProjectDataset small(index + 1, 77);
  materials::MaterialsProjectDataset large(256, 77);
  const auto a = small.get(index);
  const auto b = large.get(index);
  ASSERT_EQ(a.num_atoms(), b.num_atoms());
  EXPECT_EQ(a.species, b.species);
  EXPECT_EQ(a.scalar_targets.at("band_gap"),
            b.scalar_targets.at("band_gap"));

  sym::SyntheticPointGroupDataset s_small(index + 1, 99);
  sym::SyntheticPointGroupDataset s_large(512, 99);
  EXPECT_EQ(s_small.get(index).class_targets.at("point_group"),
            s_large.get(index).class_targets.at("point_group"));
}

INSTANTIATE_TEST_SUITE_P(Indices, DatasetSizeInvarianceTest,
                         ::testing::Values(0, 1, 7, 31, 100));

}  // namespace
}  // namespace matsci
