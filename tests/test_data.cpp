#include <gtest/gtest.h>

#include <set>

#include "core/macros.hpp"
#include "data/collate.hpp"
#include "data/dataloader.hpp"
#include "data/transforms.hpp"
#include "materials/lips.hpp"
#include "materials/materials_project.hpp"
#include "sym/synthetic_dataset.hpp"
#include "test_util.hpp"

namespace matsci::data {
namespace {

StructureSample make_sample(std::int64_t atoms, float gap,
                            std::int64_t stable, std::int64_t dataset_id) {
  StructureSample s;
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(6);
    s.positions.push_back({static_cast<double>(i) * 1.5, 0.0, 0.0});
  }
  s.scalar_targets["band_gap"] = gap;
  s.class_targets["stability"] = stable;
  s.dataset_id = dataset_id;
  return s;
}

TEST(Collate, BatchesTopologyAndTargets) {
  CollateOptions opts;
  opts.radius.cutoff = 2.0;
  Batch b = collate({make_sample(2, 1.0f, 0, 3), make_sample(3, 2.0f, 1, 3)},
                    opts);
  EXPECT_EQ(b.num_graphs(), 2);
  EXPECT_EQ(b.num_nodes(), 5);
  EXPECT_EQ(b.dataset_id, 3);
  EXPECT_EQ(b.coords.shape(), (core::Shape{5, 3}));
  EXPECT_EQ(b.species.size(), 5u);
  ASSERT_TRUE(b.scalar_targets.count("band_gap"));
  EXPECT_EQ(b.scalar_targets.at("band_gap").shape(), (core::Shape{2, 1}));
  EXPECT_FLOAT_EQ(b.scalar_targets.at("band_gap").at(1, 0), 2.0f);
  ASSERT_TRUE(b.class_targets.count("stability"));
  EXPECT_EQ(b.class_targets.at("stability")[1], 1);
  // Second graph's nodes have segment id 1.
  EXPECT_EQ(b.topology.node_graph[2], 1);
}

TEST(Collate, RejectsMixedDatasetsAndMissingTargets) {
  CollateOptions opts;
  EXPECT_THROW(
      collate({make_sample(2, 1.0f, 0, 0), make_sample(2, 1.0f, 0, 1)}, opts),
      matsci::Error);
  StructureSample incomplete = make_sample(2, 1.0f, 0, 0);
  incomplete.scalar_targets.clear();
  EXPECT_THROW(collate({make_sample(2, 1.0f, 0, 0), incomplete}, opts),
               matsci::Error);
  EXPECT_THROW(collate({}, opts), matsci::Error);
}

TEST(Collate, PointCloudRepresentationIsComplete) {
  CollateOptions opts;
  opts.representation = Representation::kPointCloud;
  Batch b = collate({make_sample(4, 0.0f, 0, 0)}, opts);
  EXPECT_EQ(b.topology.num_edges(), 12);  // 4*3 directed
}

TEST(Transforms, CoordinateJitterMovesAtoms) {
  StructureSample s = make_sample(5, 0.0f, 0, 0);
  const auto before = s.positions;
  core::RngEngine rng(1);
  CoordinateJitter(0.1).apply(s, rng);
  double moved = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    moved += core::norm(s.positions[i] - before[i]);
  }
  EXPECT_GT(moved, 1e-4);
  EXPECT_THROW(CoordinateJitter(-1.0), matsci::Error);
}

TEST(Transforms, RandomRotationPreservesDistances) {
  StructureSample s = make_sample(4, 0.0f, 0, 0);
  const double d01 = core::norm(s.positions[0] - s.positions[1]);
  core::RngEngine rng(2);
  RandomRotation().apply(s, rng);
  EXPECT_NEAR(core::norm(s.positions[0] - s.positions[1]), d01, 1e-9);
  // Periodic samples untouched.
  StructureSample periodic = make_sample(2, 0.0f, 0, 0);
  periodic.lattice = core::identity3();
  const auto before = periodic.positions;
  RandomRotation().apply(periodic, rng);
  EXPECT_NEAR(core::norm(periodic.positions[0] - before[0]), 0.0, 1e-12);
}

TEST(Transforms, CenterPositionsZerosCentroid) {
  StructureSample s = make_sample(3, 0.0f, 0, 0);
  core::RngEngine rng(3);
  CenterPositions().apply(s, rng);
  core::Vec3 c{};
  for (const auto& p : s.positions) c += p;
  EXPECT_NEAR(core::norm(c), 0.0, 1e-9);
}

TEST(Transforms, SupercellReplicatesPeriodicSamples) {
  materials::MaterialsProjectDataset ds(4, 13);
  StructureSample s = ds.get(0);
  const std::int64_t base_atoms = s.num_atoms();
  const double base_gap = s.scalar_targets.at("band_gap");
  const core::Mat3 base_cell = *s.lattice;

  core::RngEngine rng(7);
  SupercellTransform(2, 1, 3).apply(s, rng);
  EXPECT_EQ(s.num_atoms(), base_atoms * 6);
  EXPECT_EQ(s.species.size(), s.positions.size());
  // Intensive targets unchanged; cell expanded per axis.
  EXPECT_FLOAT_EQ(s.scalar_targets.at("band_gap"),
                  static_cast<float>(base_gap));
  EXPECT_NEAR(core::norm((*s.lattice)[0]), 2.0 * core::norm(base_cell[0]),
              1e-9);
  EXPECT_NEAR(core::norm((*s.lattice)[2]), 3.0 * core::norm(base_cell[2]),
              1e-9);
  // Replicas preserve local geometry: min interatomic distance in the
  // supercell is no smaller than in the unit cell.
  double min_dist = 1e9;
  for (std::size_t i = 0; i < s.positions.size(); ++i) {
    for (std::size_t j = i + 1; j < s.positions.size(); ++j) {
      min_dist = std::min(min_dist,
                          core::norm(s.positions[i] - s.positions[j]));
    }
  }
  EXPECT_GT(min_dist, 0.5);

  // Identity multipliers and non-periodic samples are no-ops.
  StructureSample cloud;
  cloud.species = {0, 0};
  cloud.positions = {{0, 0, 0}, {1, 1, 1}};
  SupercellTransform(2, 2, 2).apply(cloud, rng);
  EXPECT_EQ(cloud.num_atoms(), 2);
  EXPECT_THROW(SupercellTransform(0, 1, 1), matsci::Error);
}

TEST(Transforms, SupercellTilesForces) {
  materials::LiPSDataset lips(2, 3);
  StructureSample s = lips.get(0);
  const std::size_t base = s.forces.size();
  ASSERT_GT(base, 0u);
  core::RngEngine rng(9);
  SupercellTransform(1, 2, 1).apply(s, rng);
  ASSERT_EQ(s.forces.size(), 2 * base);
  EXPECT_NEAR(core::norm(s.forces[base] - s.forces[0]), 0.0, 1e-12);
}

TEST(Transforms, NormalizeTargetAffine) {
  StructureSample s = make_sample(2, 5.0f, 0, 0);
  core::RngEngine rng(4);
  NormalizeTarget norm("band_gap", 3.0f, 2.0f);
  norm.apply(s, rng);
  EXPECT_FLOAT_EQ(s.scalar_targets.at("band_gap"), 1.0f);
  EXPECT_FLOAT_EQ(norm.denormalize(1.0f), 5.0f);
  EXPECT_THROW(NormalizeTarget("x", 0.0f, 0.0f), matsci::Error);
}

TEST(Transforms, ChainAppliesInOrder) {
  TransformChain chain;
  chain.add(std::make_shared<NormalizeTarget>("band_gap", 1.0f, 1.0f));
  chain.add(std::make_shared<NormalizeTarget>("band_gap", 1.0f, 2.0f));
  StructureSample s = make_sample(2, 4.0f, 0, 0);
  core::RngEngine rng(5);
  chain.apply(s, rng);
  // (4-1)/1 = 3, then (3-1)/2 = 1.
  EXPECT_FLOAT_EQ(s.scalar_targets.at("band_gap"), 1.0f);
  EXPECT_EQ(chain.size(), 2u);
}

TEST(Transforms, ComputeTargetStats) {
  materials::MaterialsProjectDataset ds(64, 3);
  const TargetStats stats = compute_target_stats(ds, "band_gap", 64);
  EXPECT_GT(stats.stddev, 0.1f);
  EXPECT_GT(stats.mean, 0.0f);
  EXPECT_THROW(compute_target_stats(ds, "nope", 8), matsci::Error);
}

TEST(Split, DisjointAndExhaustive) {
  materials::MaterialsProjectDataset ds(50, 5);
  auto [train, val] = train_val_split(ds, 0.2, 9);
  EXPECT_EQ(train.size() + val.size(), 50);
  EXPECT_EQ(val.size(), 10);
  // Same split for same seed.
  auto [train2, val2] = train_val_split(ds, 0.2, 9);
  for (std::int64_t i = 0; i < val.size(); ++i) {
    EXPECT_EQ(val.get(i).scalar_targets.at("band_gap"),
              val2.get(i).scalar_targets.at("band_gap"));
  }
  EXPECT_THROW(train_val_split(ds, 0.0, 1), matsci::Error);
  EXPECT_THROW(train_val_split(ds, 1.0, 1), matsci::Error);
}

TEST(DataLoader, BatchCountsAndSizes) {
  sym::SyntheticPointGroupDataset ds(25, 1);
  DataLoaderOptions opts;
  opts.batch_size = 8;
  opts.shuffle = false;
  DataLoader loader(ds, opts);
  EXPECT_EQ(loader.num_batches(), 4);  // 8+8+8+1
  EXPECT_EQ(loader.batch(3).num_graphs(), 1);
  opts.drop_last = true;
  DataLoader dropper(ds, opts);
  EXPECT_EQ(dropper.num_batches(), 3);
  EXPECT_THROW(loader.batch(4), matsci::Error);
}

TEST(DataLoader, ShuffleDeterministicPerEpoch) {
  sym::SyntheticPointGroupDataset ds(30, 2);
  DataLoaderOptions opts;
  opts.batch_size = 30;
  opts.seed = 77;
  DataLoader a(ds, opts), b(ds, opts);
  a.set_epoch(1);
  b.set_epoch(1);
  const Batch ba = a.batch(0), bb = b.batch(0);
  ASSERT_EQ(ba.num_nodes(), bb.num_nodes());
  for (std::int64_t i = 0; i < ba.num_nodes(); ++i) {
    EXPECT_FLOAT_EQ(ba.coords.at(i, 0), bb.coords.at(i, 0));
  }
  // Different epochs give different order.
  a.set_epoch(2);
  const Batch b2 = a.batch(0);
  bool differs = b2.num_nodes() != ba.num_nodes();
  if (!differs) {
    for (std::int64_t i = 0; i < ba.num_nodes() && !differs; ++i) {
      differs = b2.coords.at(i, 0) != ba.coords.at(i, 0);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(DataLoader, DdpShardsAreDisjointAndExhaustive) {
  materials::MaterialsProjectDataset ds(40, 6);
  // Tag samples by their band gap to identify them across shards.
  std::set<float> all_gaps;
  for (std::int64_t i = 0; i < 40; ++i) {
    all_gaps.insert(ds.get(i).scalar_targets.at("band_gap"));
  }
  std::set<float> seen;
  const std::int64_t world = 4;
  for (std::int64_t rank = 0; rank < world; ++rank) {
    DataLoaderOptions opts;
    opts.batch_size = 4;
    opts.seed = 5;
    opts.rank = rank;
    opts.world_size = world;
    DataLoader loader(ds, opts);
    EXPECT_EQ(loader.samples_per_shard(), 10);
    for (std::int64_t b = 0; b < loader.num_batches(); ++b) {
      const Batch batch = loader.batch(b);
      const core::Tensor& gaps = batch.scalar_targets.at("band_gap");
      for (std::int64_t g = 0; g < gaps.size(0); ++g) {
        const bool inserted = seen.insert(gaps.at(g, 0)).second;
        EXPECT_TRUE(inserted) << "duplicate sample across shards";
      }
    }
  }
  EXPECT_EQ(seen, all_gaps);
}

TEST(DataLoader, TransformsAppliedDeterministically) {
  materials::MaterialsProjectDataset ds(10, 8);
  auto chain = std::make_shared<TransformChain>();
  chain->add(std::make_shared<CoordinateJitter>(0.05));
  DataLoaderOptions opts;
  opts.batch_size = 10;
  opts.shuffle = false;
  opts.transforms = chain;
  DataLoader a(ds, opts), b(ds, opts);
  const Batch ba = a.batch(0), bb = b.batch(0);
  for (std::int64_t i = 0; i < ba.num_nodes(); ++i) {
    EXPECT_FLOAT_EQ(ba.coords.at(i, 0), bb.coords.at(i, 0));
  }
  // And the jitter did something relative to the raw dataset.
  DataLoaderOptions raw = opts;
  raw.transforms = nullptr;
  DataLoader c(ds, raw);
  EXPECT_GT(matsci::testing::max_abs_diff(ba.coords, c.batch(0).coords), 0.0);
}

TEST(DataLoader, ValidatesOptions) {
  materials::MaterialsProjectDataset ds(10, 9);
  DataLoaderOptions opts;
  opts.batch_size = 0;
  EXPECT_THROW(DataLoader(ds, opts), matsci::Error);
  opts.batch_size = 4;
  opts.rank = 3;
  opts.world_size = 2;
  EXPECT_THROW(DataLoader(ds, opts), matsci::Error);
}

TEST(Subset, MapsIndices) {
  materials::MaterialsProjectDataset ds(10, 10);
  SubsetDataset sub(ds, {7, 2});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.get(0).scalar_targets.at("band_gap"),
            ds.get(7).scalar_targets.at("band_gap"));
  EXPECT_THROW(SubsetDataset(ds, {11}), matsci::Error);
  EXPECT_THROW(sub.get(2), matsci::Error);
}

}  // namespace
}  // namespace matsci::data
