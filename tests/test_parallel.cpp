// The determinism contract of src/core/parallel: every kernel on the
// shared pool must produce bit-identical results at any thread count
// (chunk layout is a function of problem shape only, partials merge in
// fixed order). These tests run the primitives and a full EGNN forward
// at 1, 2, and 8 threads and compare raw float bits. Built with the
// ctest label `parallel` and run under -DMATSCI_SANITIZE=thread like
// the serve suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "core/backend/backend.hpp"
#include "core/graph_ops.hpp"
#include "core/macros.hpp"
#include "core/ops.hpp"
#include "core/parallel/parallel_for.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/random.hpp"
#include "core/tensor.hpp"
#include "core/vec3.hpp"
#include "data/collate.hpp"
#include "graph/radius_graph.hpp"
#include "models/egnn.hpp"
#include "sym/synthetic_dataset.hpp"

namespace {

using namespace matsci;
namespace par = matsci::core::parallel;

constexpr std::int64_t kThreadCounts[] = {1, 2, 8};

/// Restores the global pool size on scope exit so test order doesn't
/// leak thread-count state.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : saved_(par::num_threads()) {}
  ~PoolSizeGuard() { par::set_num_threads(saved_); }

 private:
  std::int64_t saved_;
};

bool bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

std::vector<float> tensor_bits(const core::Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.numel());
}

/// Run `fn` once per thread count and assert all results bit-match
/// the 1-thread run.
template <typename Fn>
void expect_invariant_across_threads(Fn&& fn, const char* what) {
  PoolSizeGuard guard;
  par::set_num_threads(kThreadCounts[0]);
  const std::vector<float> reference = fn();
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    par::set_num_threads(kThreadCounts[i]);
    const std::vector<float> got = fn();
    EXPECT_TRUE(bit_identical(reference, got))
        << what << " differs at " << kThreadCounts[i] << " threads";
  }
}

// --- pool mechanics ----------------------------------------------------------

TEST(ThreadPool, SubmitRunsTaskAndPropagatesExceptions) {
  std::atomic<int> ran{0};
  par::TaskHandle ok = par::ThreadPool::global().submit([&] { ++ran; });
  ok.run_now_or_wait();
  EXPECT_EQ(ran.load(), 1);

  par::TaskHandle bad = par::ThreadPool::global().submit(
      [] { throw matsci::Error("task failed"); });
  EXPECT_THROW(bad.run_now_or_wait(), matsci::Error);
}

TEST(ThreadPool, RunNowOrWaitExecutesInlineOnBusyPool) {
  // With the pool collapsed to one worker occupied by a parked task,
  // a second task can still be driven to completion by the owner.
  PoolSizeGuard guard;
  par::set_num_threads(1);
  std::atomic<bool> release{false};
  par::TaskHandle parked = par::ThreadPool::global().submit([&] {
    while (!release.load()) {
    }
  });
  std::atomic<int> ran{0};
  par::TaskHandle queued = par::ThreadPool::global().submit([&] { ++ran; });
  queued.run_now_or_wait();  // pool is busy: must run inline, not hang
  EXPECT_EQ(ran.load(), 1);
  release.store(true);
  parked.run_now_or_wait();
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  PoolSizeGuard guard;
  for (const std::int64_t threads : kThreadCounts) {
    par::set_num_threads(threads);
    std::vector<int> hits(1013, 0);
    par::parallel_for(0, 1013, 64, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
    });
    for (const int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ParallelFor, PropagatesChunkExceptions) {
  EXPECT_THROW(
      par::parallel_for(0, 1000, 10,
                        [&](std::int64_t b, std::int64_t) {
                          if (b >= 500) throw matsci::Error("chunk error");
                        }),
      matsci::Error);
}

TEST(ParallelFor, NestedCallsRunInline) {
  // A parallel_for issued from inside a pool task must execute without
  // re-enqueueing (the nesting guard) — this would deadlock a
  // single-thread pool if the inner loop waited on pool helpers.
  PoolSizeGuard guard;
  par::set_num_threads(1);
  std::atomic<std::int64_t> total{0};
  par::TaskHandle job = par::ThreadPool::global().submit([&] {
    par::parallel_for(0, 256, 16, [&](std::int64_t b, std::int64_t e) {
      total.fetch_add(e - b);
    });
  });
  job.run_now_or_wait();
  EXPECT_EQ(total.load(), 256);
}

// --- determinism: primitives -------------------------------------------------

TEST(ParallelDeterminism, ParallelReduceIsThreadCountInvariant) {
  core::RngEngine rng(11);
  std::vector<float> values(100'000);
  for (auto& v : values) v = rng.normal();
  expect_invariant_across_threads(
      [&] {
        const double total = par::parallel_reduce(
            0, static_cast<std::int64_t>(values.size()), 4096, 0.0,
            [&](std::int64_t b, std::int64_t e) {
              double part = 0.0;
              for (std::int64_t i = b; i < e; ++i) part += values[i];
              return part;
            },
            [](double x, double y) { return x + y; });
        return std::vector<float>{static_cast<float>(total)};
      },
      "parallel_reduce");
}

TEST(ParallelDeterminism, SegmentSumIsThreadCountInvariant) {
  core::RngEngine rng(12);
  const std::int64_t rows = 8192, d = 64, segments = 512;
  core::Tensor x = core::Tensor::randn({rows, d}, rng);
  std::vector<std::int64_t> seg(static_cast<std::size_t>(rows));
  for (auto& s : seg) s = rng.next_int(segments);

  // Serial reference: the exact loop the seed kernel used.
  std::vector<float> expected(static_cast<std::size_t>(segments * d), 0.0f);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < d; ++j) {
      expected[seg[static_cast<std::size_t>(r)] * d + j] +=
          x.data()[r * d + j];
    }
  }

  expect_invariant_across_threads(
      [&] {
        core::NoGradGuard no_grad;
        return tensor_bits(core::segment_sum(x, seg, segments));
      },
      "segment_sum");

  // And the parallel kernel matches the serial accumulation order
  // bit-for-bit (bucketed order == ascending row order per segment).
  core::NoGradGuard no_grad;
  EXPECT_TRUE(
      bit_identical(expected, tensor_bits(core::segment_sum(x, seg, segments))));
}

TEST(ParallelDeterminism, ScatterGatherMatmulAreThreadCountInvariant) {
  core::RngEngine rng(13);
  const std::int64_t n = 1024, d = 64;
  core::Tensor x = core::Tensor::randn({n, d}, rng);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(4 * n));
  for (auto& i : idx) i = rng.next_int(n);
  core::Tensor edges = core::Tensor::randn({4 * n, d}, rng);
  core::Tensor a = core::Tensor::randn({192, 96}, rng);
  core::Tensor b = core::Tensor::randn({96, 160}, rng);

  expect_invariant_across_threads(
      [&] {
        core::NoGradGuard no_grad;
        return tensor_bits(core::gather_rows(x, idx));
      },
      "gather_rows");
  expect_invariant_across_threads(
      [&] {
        core::NoGradGuard no_grad;
        return tensor_bits(core::scatter_add_rows(edges, idx, n));
      },
      "scatter_add_rows");
  expect_invariant_across_threads(
      [&] {
        core::NoGradGuard no_grad;
        return tensor_bits(core::matmul(a, b));
      },
      "matmul");
}

TEST(ParallelDeterminism, RadiusGraphEdgesAreThreadCountInvariant) {
  core::RngEngine rng(14);
  std::vector<core::Vec3> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)});
  }
  graph::RadiusGraphOptions opts;
  opts.cutoff = 3.0;
  opts.max_neighbors = 12;

  PoolSizeGuard guard;
  par::set_num_threads(1);
  const graph::Graph reference = graph::build_radius_graph(pts, opts);
  for (const std::int64_t threads : {2, 8}) {
    par::set_num_threads(threads);
    const graph::Graph got = graph::build_radius_graph(pts, opts);
    EXPECT_EQ(reference.src, got.src) << threads << " threads";
    EXPECT_EQ(reference.dst, got.dst) << threads << " threads";
  }
}

TEST(ParallelDeterminism, KernelsAreThreadCountInvariantUnderEveryBackend) {
  // The thread-count contract holds per backend, not just for the
  // default table: chunk layout depends only on shape and grain, and
  // every kernel's chunk arithmetic is independent of thread count. Run
  // the reassociating kernels (the ones that would betray a
  // chunk-dependent accumulation first) under each compiled-and-
  // supported tier.
  namespace bk = core::backend;
  struct BackendGuard {
    bk::Backend saved = bk::active_backend();
    ~BackendGuard() { bk::set_backend(saved); }
  } backend_guard;

  core::RngEngine rng(16);
  core::Tensor a = core::Tensor::randn({160, 96}, rng);
  core::Tensor b = core::Tensor::randn({96, 128}, rng);
  core::Tensor x = core::Tensor::randn({8192, 64}, rng);
  core::Tensor logits = core::Tensor::randn({2048, 33}, rng);

  for (int i = 0; i < bk::kNumBackends; ++i) {
    const auto backend = static_cast<bk::Backend>(i);
    if (!bk::backend_supported(backend)) continue;
    bk::set_backend(backend);
    const std::string tag = std::string("backend ") + bk::backend_name(backend);
    expect_invariant_across_threads(
        [&] {
          core::NoGradGuard no_grad;
          return tensor_bits(core::matmul(a, b));
        },
        (tag + " matmul").c_str());
    expect_invariant_across_threads(
        [&] {
          core::NoGradGuard no_grad;
          return tensor_bits(core::sum(x));
        },
        (tag + " sum").c_str());
    expect_invariant_across_threads(
        [&] {
          core::NoGradGuard no_grad;
          return tensor_bits(core::softmax_rows(logits));
        },
        (tag + " softmax_rows").c_str());
  }
}

// --- determinism: full model forward ----------------------------------------

TEST(ParallelDeterminism, EgnnForwardIsThreadCountInvariant) {
  core::RngEngine rng(15);
  models::EGNNConfig cfg;
  cfg.hidden_dim = 64;
  cfg.pos_hidden = 16;
  cfg.num_layers = 3;
  models::EGNN encoder(cfg, rng);

  sym::SyntheticPointGroupDataset ds(16, 21);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < 16; ++i) samples.push_back(ds.get(i));
  data::CollateOptions copts;
  copts.representation = data::Representation::kPointCloud;

  expect_invariant_across_threads(
      [&] {
        core::NoGradGuard no_grad;
        const data::Batch batch = data::collate(samples, copts);
        return tensor_bits(encoder.encode(batch));
      },
      "EGNN forward");
}

TEST(ParallelDeterminism, EgnnBackwardIsThreadCountInvariant) {
  sym::SyntheticPointGroupDataset ds(8, 22);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < 8; ++i) samples.push_back(ds.get(i));
  data::CollateOptions copts;
  copts.representation = data::Representation::kPointCloud;
  const data::Batch batch = data::collate(samples, copts);

  models::EGNNConfig cfg;
  cfg.hidden_dim = 32;
  cfg.pos_hidden = 8;
  cfg.num_layers = 2;

  expect_invariant_across_threads(
      [&] {
        core::RngEngine rng(23);  // fresh identical model per run
        models::EGNN encoder(cfg, rng);
        core::Tensor loss = core::mean(core::square(encoder.encode(batch)));
        loss.backward();
        std::vector<float> grads;
        for (const core::Tensor& p : encoder.parameters()) {
          const core::Tensor g = p.grad();
          grads.insert(grads.end(), g.data(), g.data() + g.numel());
        }
        grads.push_back(loss.item());
        return grads;
      },
      "EGNN backward");
}

}  // namespace
