#include <gtest/gtest.h>

#include <thread>

#include "core/macros.hpp"
#include "core/ops.hpp"
#include "core/tensor.hpp"

namespace matsci::core {
namespace {

TEST(Tensor, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.numel(), matsci::Error);
  EXPECT_THROW(t.shape(), matsci::Error);
}

TEST(Tensor, ZerosOnesFull) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.dim(), 2);
  EXPECT_EQ(z.size(0), 2);
  EXPECT_EQ(z.size(1), 3);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.at(i), 0.0f);

  Tensor o = Tensor::ones({4});
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(o.at(i), 1.0f);

  Tensor f = Tensor::full({2, 2}, 3.5f);
  EXPECT_EQ(f.at(1, 1), 3.5f);
}

TEST(Tensor, FromVectorValidatesNumel) {
  EXPECT_NO_THROW(Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3}));
  EXPECT_THROW(Tensor::from_vector({1, 2, 3}, {2, 3}), matsci::Error);
}

TEST(Tensor, ScalarItem) {
  Tensor s = Tensor::scalar(2.25f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_FLOAT_EQ(s.item(), 2.25f);
  Tensor m = Tensor::zeros({2, 2});
  EXPECT_THROW(m.item(), matsci::Error);
}

TEST(Tensor, ElementAccessBounds) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 6.0f);
  EXPECT_THROW(t.at(2, 0), matsci::Error);
  EXPECT_THROW(t.at(0, 3), matsci::Error);
  t.set(1, 1, 9.0f);
  EXPECT_FLOAT_EQ(t.at(1, 1), 9.0f);
}

TEST(Tensor, CopySharesPayloadCloneDoesNot) {
  Tensor a = Tensor::zeros({3});
  Tensor shared = a;  // handle copy
  Tensor deep = a.clone();
  a.set(0, 7.0f);
  EXPECT_FLOAT_EQ(shared.at(0), 7.0f);
  EXPECT_FLOAT_EQ(deep.at(0), 0.0f);
}

TEST(Tensor, DetachDropsGradTracking) {
  Tensor a = Tensor::ones({2}).set_requires_grad(true);
  Tensor b = mul_scalar(a, 2.0f);
  EXPECT_TRUE(b.impl()->grad_fn != nullptr);
  Tensor d = b.detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.impl()->grad_fn, nullptr);
  EXPECT_FLOAT_EQ(d.at(0), 2.0f);
}

TEST(Tensor, RequiresGradOnlyOnLeaves) {
  Tensor a = Tensor::ones({2}).set_requires_grad(true);
  Tensor b = mul_scalar(a, 2.0f);
  EXPECT_THROW(b.set_requires_grad(true), matsci::Error);
}

TEST(Tensor, CopyUnderscoreWritesInPlace) {
  Tensor a = Tensor::zeros({2, 2});
  Tensor b = Tensor::from_vector({1, 2, 3, 4}, {2, 2});
  a.copy_(b);
  EXPECT_FLOAT_EQ(a.at(1, 1), 4.0f);
  Tensor c = Tensor::zeros({3});
  EXPECT_THROW(c.copy_(b), matsci::Error);
}

TEST(Tensor, RandnDeterministicInSeed) {
  RngEngine r1(42), r2(42), r3(43);
  Tensor a = Tensor::randn({8}, r1);
  Tensor b = Tensor::randn({8}, r2);
  Tensor c = Tensor::randn({8}, r3);
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(a.at(i), b.at(i));
  }
  bool differs = false;
  for (std::int64_t i = 0; i < 8; ++i) {
    if (a.at(i) != c.at(i)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Tensor, NegativeShapeThrows) {
  EXPECT_THROW(Tensor::zeros({-1, 2}), matsci::Error);
}

TEST(Tensor, ZeroGradResetsBuffer) {
  Tensor a = Tensor::ones({3}).set_requires_grad(true);
  sum(a).backward();
  EXPECT_TRUE(a.has_grad());
  EXPECT_FLOAT_EQ(a.grad().at(0), 1.0f);
  a.zero_grad();
  EXPECT_FLOAT_EQ(a.grad().at(0), 0.0f);
}

TEST(Tensor, ToStringTruncates) {
  Tensor t = Tensor::zeros({100});
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[100]"), std::string::npos);
}

TEST(NoGradGuard, DisablesTapeRecording) {
  Tensor a = Tensor::ones({2}).set_requires_grad(true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(grad_mode_enabled());
    Tensor b = mul_scalar(a, 3.0f);
    EXPECT_EQ(b.impl()->grad_fn, nullptr);
  }
  EXPECT_TRUE(grad_mode_enabled());
  Tensor c = mul_scalar(a, 3.0f);
  EXPECT_NE(c.impl()->grad_fn, nullptr);
}

TEST(NoGradGuard, Nests) {
  NoGradGuard outer;
  {
    NoGradGuard inner;
    EXPECT_FALSE(grad_mode_enabled());
  }
  EXPECT_FALSE(grad_mode_enabled());
}

TEST(NoGradGuard, IsThreadLocal) {
  // The serving contract: a guard on one thread must not leak into any
  // other, and fresh threads start with grad mode enabled.
  NoGradGuard main_guard;
  EXPECT_FALSE(grad_mode_enabled());

  bool worker_started_enabled = false;
  bool worker_disabled_inside_guard = false;
  std::thread worker([&] {
    worker_started_enabled = grad_mode_enabled();
    NoGradGuard guard;
    worker_disabled_inside_guard = !grad_mode_enabled();
  });
  worker.join();
  EXPECT_TRUE(worker_started_enabled);
  EXPECT_TRUE(worker_disabled_inside_guard);
  // The worker's guard (and its destruction) left this thread untouched.
  EXPECT_FALSE(grad_mode_enabled());

  bool sibling_saw_enabled = false;
  std::thread sibling([&] { sibling_saw_enabled = grad_mode_enabled(); });
  sibling.join();
  // A NoGradGuard alive on this thread is invisible to a sibling.
  EXPECT_TRUE(sibling_saw_enabled);
}

TEST(ShapeHelpers, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

}  // namespace
}  // namespace matsci::core
