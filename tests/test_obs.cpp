// Observability subsystem tests (ctest label `obs`). The concurrency
// tests run pool workers and client threads against one registry and
// assert bit-stable merged counts; run them under TSan with
//   cmake -B build-tsan -DMATSCI_SANITIZE=thread && cmake --build build-tsan
//   ctest --test-dir build-tsan -L obs --output-on-failure
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "core/macros.hpp"
#include "core/parallel/thread_pool.hpp"
#include "obs/obs.hpp"
#include "serve/stats.hpp"
#include "train/logging.hpp"

namespace {

using namespace matsci;

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// --- Counter / Gauge ---------------------------------------------------------

TEST(ObsCounter, SingleThreadExact) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

// Pool workers and dedicated client threads hammer one registry
// counter and one histogram; after joining, merged counts must equal
// the emission count exactly — the sharded fast path may not lose or
// double-count a single increment.
TEST(ObsCounter, PoolWorkersAndClientsMergeExactly) {
  namespace par = core::parallel;
  const std::int64_t saved = par::num_threads();
  par::set_num_threads(4);

  obs::Counter& counter =
      obs::MetricsRegistry::global().counter("test.hammer.counter");
  obs::Histogram& hist =
      obs::MetricsRegistry::global().histogram("test.hammer.hist");
  counter.reset();
  hist.reset();

  constexpr int kPoolTasks = 8;
  constexpr int kClientThreads = 4;
  constexpr int kPerWorker = 5000;

  std::vector<par::TaskHandle> tasks;
  for (int t = 0; t < kPoolTasks; ++t) {
    tasks.push_back(par::ThreadPool::global().submit([&] {
      for (int i = 0; i < kPerWorker; ++i) {
        counter.add(1);
        hist.observe(static_cast<double>(i % 977));
      }
    }));
  }
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerWorker; ++i) {
        counter.add(1);
        hist.observe(static_cast<double>(i % 977));
      }
    });
  }
  for (par::TaskHandle& t : tasks) t.run_now_or_wait();
  for (std::thread& t : clients) t.join();

  const std::int64_t expected =
      static_cast<std::int64_t>(kPoolTasks + kClientThreads) * kPerWorker;
  EXPECT_EQ(counter.value(), expected);
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, expected);
  std::int64_t bucket_total = 0;
  for (const std::int64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, expected);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 976.0);

  par::set_num_threads(saved);
}

TEST(ObsGauge, SetAddRead) {
  obs::Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// --- Histogram ---------------------------------------------------------------

TEST(ObsHistogram, BucketsSumMinMax) {
  obs::Histogram h({10.0, 100.0, 1000.0});
  for (const double v : {5.0, 10.0, 50.0, 500.0, 5000.0}) h.observe(v);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 2);       // 5, 10 (<= 10)
  EXPECT_EQ(snap.counts[1], 1);       // 50
  EXPECT_EQ(snap.counts[2], 1);       // 500
  EXPECT_EQ(snap.counts[3], 1);       // 5000 overflow
  EXPECT_DOUBLE_EQ(snap.sum, 5565.0);
  EXPECT_DOUBLE_EQ(snap.min, 5.0);
  EXPECT_DOUBLE_EQ(snap.max, 5000.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 1113.0);
}

TEST(ObsHistogram, PercentilesInterpolateWithinBuckets) {
  obs::Histogram h(obs::Histogram::default_latency_bounds_us());
  for (int i = 1; i <= 10; ++i) h.observe(100.0 * i);  // 100..1000
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_NEAR(snap.percentile(0.50), 500.0, 100.0);
  EXPECT_GE(snap.percentile(0.95), 900.0);
  EXPECT_LE(snap.percentile(0.95), 1000.0);
  EXPECT_DOUBLE_EQ(snap.percentile(1.0), 1000.0);
  // Quantiles clamp to the observed range.
  EXPECT_GE(snap.percentile(0.0), 100.0);
}

TEST(ObsHistogram, SingleValueAllQuantilesCollapse) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(42.0);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(snap.percentile(0.99), 42.0);
}

TEST(ObsHistogram, EmptySnapshotIsZero) {
  obs::Histogram h({1.0});
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
}

TEST(ObsHistogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), Error);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), Error);
}

// --- Series / Registry -------------------------------------------------------

TEST(ObsSeries, RecordsInOrder) {
  obs::Series s;
  s.record(0, 1.0);
  s.record(1, 0.5);
  s.record(1, 0.25);
  const auto points = s.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[2].first, 1);
  EXPECT_DOUBLE_EQ(points[2].second, 0.25);
  EXPECT_DOUBLE_EQ(s.last_value(), 0.25);
}

TEST(ObsRegistry, StableReferencesAndSnapshot) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& a = reg.counter("test.registry.counter");
  obs::Counter& b = reg.counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(7);
  reg.gauge("test.registry.gauge").set(2.5);
  reg.series("test.registry.series").record(3, 1.5);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.registry.counter"), 7);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.registry.gauge"), 2.5);
  ASSERT_FALSE(snap.series.at("test.registry.series").empty());
  EXPECT_DOUBLE_EQ(snap.series.at("test.registry.series").back().second, 1.5);
}

// --- Tracer ------------------------------------------------------------------

TEST(ObsTracer, ScopesRecordSpansWithThreadIds) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    MATSCI_TRACE_SCOPE("test/outer");
    MATSCI_TRACE_SCOPE("test/inner");
  }
  std::thread other([] { MATSCI_TRACE_SCOPE("test/other_thread"); });
  other.join();
  tracer.set_enabled(false);

  const std::vector<obs::TraceEvent> events = tracer.collect();
#if defined(MATSCI_OBS_ENABLED)
  ASSERT_EQ(events.size(), 3u);
  std::uint32_t main_tid = 0, other_tid = 0;
  std::uint64_t outer_dur = 0, inner_dur = 1;
  for (const obs::TraceEvent& ev : events) {
    ASSERT_NE(ev.name, nullptr);
    EXPECT_GT(ev.tid, 0u);
    const std::string name(ev.name);
    if (name == "test/other_thread") other_tid = ev.tid;
    if (name == "test/inner") { main_tid = ev.tid; inner_dur = ev.dur_ns; }
    if (name == "test/outer") outer_dur = ev.dur_ns;
  }
  EXPECT_NE(main_tid, 0u);
  EXPECT_NE(other_tid, 0u);
  EXPECT_NE(main_tid, other_tid);
  // The outer scope strictly contains the inner one.
  EXPECT_GE(outer_dur, inner_dur);
#else
  EXPECT_TRUE(events.empty());
#endif
  tracer.clear();
}

TEST(ObsTracer, DisabledScopesRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(false);
  { MATSCI_TRACE_SCOPE("test/disabled"); }
  EXPECT_TRUE(tracer.collect().empty());
}

TEST(ObsTracer, RingWrapsAndCountsDropped) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  const std::size_t n = obs::Tracer::kRingCapacity + 100;
  for (std::size_t i = 0; i < n; ++i) {
    tracer.record("test/wrap", i, 1);
  }
  const std::vector<obs::TraceEvent> events = tracer.collect();
  EXPECT_EQ(events.size(), obs::Tracer::kRingCapacity);
  // Oldest events were overwritten: the retained window is the tail.
  EXPECT_EQ(events.front().start_ns, 100u);
  EXPECT_EQ(tracer.dropped(), 100);
  tracer.clear();
  EXPECT_TRUE(tracer.collect().empty());
}

// --- Exporters ---------------------------------------------------------------

TEST(ObsExport, ChromeTraceRoundTripsThroughValidator) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"phase \"a\"", 1000, 500, 1});
  events.push_back({"phase_b", 1200, 100, 2});
  const std::string json = obs::chrome_trace_json(events);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace_json(json, &error)) << error;

  // Empty trace is still structurally valid.
  EXPECT_TRUE(obs::validate_chrome_trace_json(obs::chrome_trace_json({})));
}

TEST(ObsExport, ValidatorRejectsStructuralDamage) {
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace_json("[]", &error));
  EXPECT_FALSE(obs::validate_chrome_trace_json("{\"traceEvents\":{}}"));
  EXPECT_FALSE(obs::validate_chrome_trace_json(
      "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":1}]}"));
  EXPECT_FALSE(obs::validate_chrome_trace_json(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"pid\":1,"
      "\"tid\":1}]}"));  // X without dur
  // Outright broken JSON.
  EXPECT_FALSE(obs::validate_json("{\"a\":", &error));
  EXPECT_FALSE(obs::validate_json("{\"a\":1} trailing"));
  EXPECT_FALSE(obs::validate_json("{'a':1}"));
  EXPECT_TRUE(obs::validate_json("{\"a\":[1,2.5,-3e2,\"x\",true,null]}"));
}

TEST(ObsExport, PrometheusTextShape) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("test.prom.counter").reset();
  reg.counter("test.prom.counter").add(3);
  reg.gauge("test.prom.gauge").set(1.25);
  obs::Histogram& h = reg.histogram("test.prom.hist", {1.0, 2.0});
  h.reset();
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const std::string text = obs::prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE matsci_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("matsci_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("matsci_test_prom_gauge 1.25"), std::string::npos);
  EXPECT_NE(text.find("matsci_test_prom_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("matsci_test_prom_hist_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("matsci_test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("matsci_test_prom_hist_count 3"), std::string::npos);
}

TEST(ObsExport, ChromeTraceEmbedsDroppedEventsMetadata) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"phase_a", 1000, 500, 1});
  const std::string json = obs::chrome_trace_json(events, /*dropped=*/42);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace_json(json, &error)) << error;
  EXPECT_NE(json.find("\"droppedEvents\":42"), std::string::npos);
  EXPECT_NE(json.find("\"ringCapacityPerThread\""), std::string::npos);
  // Default (-1) keeps the legacy shape: no metadata object.
  EXPECT_EQ(obs::chrome_trace_json(events).find("droppedEvents"),
            std::string::npos);
}

TEST(ObsTracer, DroppedByThreadReportsOnlyOverflowedRings) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  for (std::size_t i = 0; i < obs::Tracer::kRingCapacity + 7; ++i) {
    tracer.record("test/wrap2", i, 1);
  }
  const auto per_thread = tracer.dropped_by_thread();
  ASSERT_EQ(per_thread.size(), 1u);  // only this thread's ring overflowed
  EXPECT_EQ(per_thread[0].second, 7);
  EXPECT_EQ(tracer.dropped(), 7);
  tracer.clear();
  EXPECT_TRUE(tracer.dropped_by_thread().empty());
}

TEST(ObsExport, PrometheusEscapingRules) {
  EXPECT_EQ(obs::prometheus_escape_label_value("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
  EXPECT_EQ(obs::prometheus_escape_help("help\\ text\nline2"),
            "help\\\\ text\\nline2");
  // HELP keeps double quotes unescaped (only label values escape them).
  EXPECT_EQ(obs::prometheus_escape_help("say \"hi\""), "say \"hi\"");
}

TEST(ObsExport, PrometheusRoundTripsThroughValidator) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("test.promrt.counter").reset();
  reg.counter("test.promrt.counter").add(2);
  reg.gauge("test.promrt.gauge").set(-0.5);
  obs::Histogram& h = reg.histogram("test.promrt.hist", {1.0, 2.0});
  h.reset();
  h.observe(0.5);
  h.observe(9.0);
  obs::Series& s = reg.series("test.promrt.series");
  s.record(1, 3.5);

  const std::string text = obs::prometheus_text(reg.snapshot());
  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error;
}

TEST(ObsExport, PrometheusInfBucketGuaranteedForHandBuiltSnapshots) {
  // A snapshot whose counts lack the overflow slot (counts.size() ==
  // bounds.size()) must still emit le="+Inf" equal to _count.
  obs::MetricsRegistry::Snapshot snap;
  obs::HistogramSnapshot hist;
  hist.bounds = {1.0, 2.0};
  hist.counts = {1, 2};  // no overflow slot
  hist.count = 5;        // 2 observations above every bound
  hist.sum = 12.0;
  snap.histograms["test.hand.hist"] = hist;

  const std::string text = obs::prometheus_text(snap);
  EXPECT_NE(text.find("matsci_test_hand_hist_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error;
}

TEST(ObsExport, PrometheusValidatorRejectsDamage) {
  std::string error;
  // Non-cumulative buckets.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "m_bucket{le=\"1\"} 5\nm_bucket{le=\"+Inf\"} 3\nm_sum 1\nm_count 3\n",
      &error));
  // Missing +Inf bucket.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "m_bucket{le=\"1\"} 1\nm_sum 1\nm_count 3\n", &error));
  // +Inf bucket disagrees with _count.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "m_bucket{le=\"+Inf\"} 2\nm_sum 1\nm_count 3\n", &error));
  // Unquoted label value, bad name, bad value, unterminated labels.
  EXPECT_FALSE(obs::validate_prometheus_text("m{le=1} 2\n", &error));
  EXPECT_FALSE(obs::validate_prometheus_text("2bad 1\n", &error));
  EXPECT_FALSE(obs::validate_prometheus_text("m x\n", &error));
  EXPECT_FALSE(obs::validate_prometheus_text("m{le=\"1\" 2\n", &error));
  // A plain counter named *_count must not require histogram structure.
  EXPECT_TRUE(obs::validate_prometheus_text("requests_count 7\n", &error))
      << error;
  // Escaped label values parse.
  EXPECT_TRUE(obs::validate_prometheus_text(
      "m{l=\"a\\\\b\\\"c\\nd\"} 1\n", &error))
      << error;
}

TEST(ObsExport, JsonRecordRendering) {
  const std::string line = obs::JsonRecord()
                               .set("bench", "demo \"x\"\n")
                               .set("n", static_cast<std::int64_t>(7))
                               .set("t", 1.5)
                               .set("ok", true)
                               .set_raw("arr", "[1,2]")
                               .str();
  EXPECT_EQ(line,
            "{\"bench\":\"demo \\\"x\\\"\\n\",\"n\":7,\"t\":1.5,"
            "\"ok\":true,\"arr\":[1,2]}");
  std::string error;
  EXPECT_TRUE(obs::validate_json(line, &error)) << error;
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(ObsExport, BenchReporterWritesValidArtifacts) {
  obs::BenchReporter reporter("obs_selftest", testing::TempDir());
  // Ensure the registry snapshot contributes at least one line even
  // when this test runs in an isolated process (ctest discovery runs
  // one case per invocation, so no other test has registered metrics).
  obs::MetricsRegistry::global().counter("test.reporter.counter").add(1);
  {
    MATSCI_TRACE_SCOPE("test/reporter_span");
  }
  reporter.add(obs::JsonRecord().set("value", 1.0));
  reporter.add(obs::JsonRecord().set("bench", "custom").set("value", 2.0));
  reporter.finish();
  obs::Tracer::global().set_enabled(false);

  const std::string bench = slurp(reporter.bench_json_path());
  std::istringstream lines(bench);
  std::string line;
  std::size_t n_lines = 0;
  bool saw_meta = false, saw_default_name = false, saw_custom = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n_lines;
    std::string error;
    EXPECT_TRUE(obs::validate_json(line, &error)) << error << "\n" << line;
    if (line.find("\"record\":\"meta\"") != std::string::npos) saw_meta = true;
    if (line.find("\"bench\":\"obs_selftest\"") != std::string::npos) {
      saw_default_name = true;
    }
    if (line.find("\"bench\":\"custom\"") != std::string::npos) {
      saw_custom = true;
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_default_name);
  EXPECT_TRUE(saw_custom);
  // meta + 2 records + at least one registry-snapshot record.
  EXPECT_GE(n_lines, 4u);

  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace_json(slurp(reporter.trace_json_path()),
                                              &error))
      << error;
#if defined(MATSCI_OBS_ENABLED)
  EXPECT_NE(slurp(reporter.trace_json_path()).find("test/reporter_span"),
            std::string::npos);
#endif
  std::remove(reporter.bench_json_path().c_str());
  std::remove(reporter.trace_json_path().c_str());
}

// --- Integration with serve / train ------------------------------------------

TEST(ObsServerStats, JsonShapeAndCountsUnchanged) {
  serve::ServerStats stats;
  stats.record_batch(4, {100.0, 200.0, 300.0, 400.0});
  stats.record_batch(2, {500.0, 600.0});
  EXPECT_EQ(stats.requests_served(), 6);
  EXPECT_EQ(stats.batches_executed(), 2);
  const std::string json = stats.to_json();
  for (const char* key :
       {"\"requests\":6", "\"batches\":2", "\"mean_batch_size\":",
        "\"throughput_structs_per_s\":", "\"p50_us\":", "\"p95_us\":",
        "\"p99_us\":", "\"mean_us\":", "\"max_us\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  const serve::LatencySummary s = stats.latency_summary();
  EXPECT_DOUBLE_EQ(s.mean_us, 350.0);
  EXPECT_DOUBLE_EQ(s.max_us, 600.0);
}

// Many threads hammering one ServerStats: counts stay exact (the
// original motivation: the histogram path must not trade correctness
// for dropping the under-mutex sort).
TEST(ObsServerStats, ConcurrentRecordBatchExactCounts) {
  serve::ServerStats stats;
  constexpr int kThreads = 8;
  constexpr int kBatches = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < kBatches; ++i) {
        stats.record_batch(3, {10.0, 20.0, 30.0});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(stats.requests_served(), kThreads * kBatches * 3);
  EXPECT_EQ(stats.batches_executed(), kThreads * kBatches);
  EXPECT_EQ(stats.latency_summary().max_us, 30.0);
  const auto hist = stats.batch_size_histogram();
  EXPECT_EQ(hist.at(3), kThreads * kBatches);
}

TEST(ObsMetricsLogger, ForwardsSeriesAndKeepsCsvFormat) {
  obs::MetricsRegistry::global().series("train.test_obs_loss").reset();
  train::MetricsLogger logger;
  logger.log(0, "test_obs_loss", 1.0);
  logger.log(1, "test_obs_loss", 0.5);
  logger.log(1, "test_obs_acc", 0.9);

  const auto points =
      obs::MetricsRegistry::global().series("train.test_obs_loss").points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[1].first, 1);
  EXPECT_DOUBLE_EQ(points[1].second, 0.5);

  const std::string path = testing::TempDir() + "/obs_logger.csv";
  logger.write_csv(path);
  EXPECT_EQ(slurp(path),
            "step,test_obs_acc,test_obs_loss\n0,,1\n1,0.9,0.5\n");
  std::remove(path.c_str());

  // Forwarding off: no new points land.
  train::MetricsLogger quiet;
  quiet.set_obs_prefix("");
  quiet.log(2, "test_obs_loss", 0.25);
  EXPECT_EQ(obs::MetricsRegistry::global()
                .series("train.test_obs_loss")
                .points()
                .size(),
            2u);
}

}  // namespace
