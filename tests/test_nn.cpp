#include <gtest/gtest.h>

#include <cmath>

#include "core/macros.hpp"
#include "core/ops.hpp"
#include "nn/activations.hpp"
#include "nn/dropout.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/norm.hpp"
#include "test_util.hpp"

namespace matsci::nn {
namespace {

using core::RngEngine;
using core::Shape;
using core::Tensor;

TEST(Linear, ForwardShapeAndValue) {
  RngEngine rng(1);
  Linear lin(3, 2, rng);
  // Overwrite weights for a deterministic check: y = xW + b.
  lin.weight().copy_(Tensor::from_vector({1, 0, 0, 1, 1, 1}, {3, 2}));
  lin.bias().copy_(Tensor::from_vector({0.5f, -0.5f}, {2}));
  Tensor x = Tensor::from_vector({1, 2, 3}, {1, 3});
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f + 3.0f + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f + 3.0f - 0.5f);
}

TEST(Linear, NoBiasOption) {
  RngEngine rng(2);
  Linear lin(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  EXPECT_FALSE(lin.bias().defined());
  Tensor x = Tensor::zeros({2, 4});
  Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
}

TEST(Linear, RejectsWrongInputWidth) {
  RngEngine rng(3);
  Linear lin(4, 2, rng);
  EXPECT_THROW(lin.forward(Tensor::zeros({2, 3})), matsci::Error);
}

TEST(Linear, InitializationBounded) {
  RngEngine rng(4);
  Linear lin(64, 32, rng);
  const float bound = 1.0f / std::sqrt(64.0f);
  const core::Tensor weight = lin.weight();
  for (const float w : weight.span()) {
    EXPECT_LE(std::fabs(w), bound);
  }
}

TEST(Module, ParameterTreeNamesAndOrder) {
  RngEngine rng(5);
  MLP mlp({4, 8, 2}, Act::kSiLU, rng);
  const auto named = mlp.named_parameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "layer0.weight");
  EXPECT_EQ(named[1].first, "layer0.bias");
  EXPECT_EQ(named[2].first, "layer1.weight");
  EXPECT_EQ(named[3].first, "layer1.bias");
  EXPECT_EQ(mlp.num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(Module, TrainModePropagates) {
  RngEngine rng(6);
  ResidualMLPBlock block(8, Act::kSELU, 0.5f, rng);
  EXPECT_TRUE(block.is_training());
  block.train(false);
  // Dropout inside the block must now be identity: output deterministic.
  Tensor x = Tensor::randn({4, 8}, rng);
  Tensor y1 = block.forward(x);
  Tensor y2 = block.forward(x);
  EXPECT_LT(matsci::testing::max_abs_diff(y1, y2), 1e-7);
}

TEST(Module, CopyParametersFrom) {
  RngEngine r1(7), r2(8);
  MLP a({4, 4}, Act::kReLU, r1);
  MLP b({4, 4}, Act::kReLU, r2);
  EXPECT_GT(matsci::testing::max_abs_diff(a.parameters()[0],
                                          b.parameters()[0]),
            1e-6);
  b.copy_parameters_from(a);
  EXPECT_LT(matsci::testing::max_abs_diff(a.parameters()[0],
                                          b.parameters()[0]),
            1e-9);
}

TEST(Module, ZeroGradClearsAll) {
  RngEngine rng(9);
  MLP mlp({3, 3}, Act::kSiLU, rng);
  Tensor x = Tensor::randn({2, 3}, rng);
  core::sum(mlp.forward(x)).backward();
  bool any_nonzero = false;
  for (core::Tensor p : mlp.parameters()) {
    for (const float g : p.grad_span()) {
      if (g != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  mlp.zero_grad();
  for (core::Tensor p : mlp.parameters()) {
    for (const float g : p.grad_span()) EXPECT_EQ(g, 0.0f);
  }
}

TEST(Activations, ParseAndNameRoundTrip) {
  for (const auto act : {Act::kReLU, Act::kSiLU, Act::kSELU, Act::kGELU,
                         Act::kTanh, Act::kSigmoid, Act::kSoftplus}) {
    EXPECT_EQ(parse_activation(activation_name(act)), act);
  }
  EXPECT_THROW(parse_activation("bogus"), matsci::Error);
  EXPECT_EQ(parse_activation("swish"), Act::kSiLU);
}

TEST(Activations, ModuleWrapper) {
  Activation act(Act::kReLU);
  Tensor x = Tensor::from_vector({-1, 1}, {2});
  Tensor y = act.forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 1.0f);
  EXPECT_TRUE(act.parameters().empty());
}

TEST(RMSNorm, UnitScaleOutput) {
  RMSNorm norm(8);
  RngEngine rng(10);
  Tensor x = Tensor::randn({16, 8}, rng, 0.0f, 5.0f);
  Tensor y = norm.forward(x);
  // With weight = 1 the rows should have RMS ~ 1.
  for (std::int64_t i = 0; i < 16; ++i) {
    double ms = 0.0;
    for (std::int64_t j = 0; j < 8; ++j) {
      ms += static_cast<double>(y.at(i, j)) * y.at(i, j);
    }
    EXPECT_NEAR(std::sqrt(ms / 8.0), 1.0, 1e-3);
  }
}

TEST(RMSNorm, GradcheckThroughNorm) {
  RMSNorm norm(4);
  RngEngine rng(11);
  Tensor x = Tensor::rand_uniform({3, 4}, rng, 0.5f, 2.0f)
                 .set_requires_grad(true);
  // Weighted sum: sum(square(norm(x))) is nearly constant by construction
  // (rows are normalized), which would make the check vacuous.
  Tensor w = Tensor::from_vector({0.7f, -1.3f, 0.4f, 2.1f}, {4});
  matsci::testing::gradcheck(
      [&norm, &w](auto& in) {
        return core::sum(core::mul(norm.forward(in[0]), w));
      },
      {x});
}

TEST(LayerNorm, ZeroMeanUnitVar) {
  LayerNorm norm(16);
  RngEngine rng(12);
  Tensor x = Tensor::randn({8, 16}, rng, 3.0f, 2.0f);
  Tensor y = norm.forward(x);
  for (std::int64_t i = 0; i < 8; ++i) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t j = 0; j < 16; ++j) mean += y.at(i, j);
    mean /= 16.0;
    for (std::int64_t j = 0; j < 16; ++j) {
      var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var / 16.0, 1.0, 1e-2);
  }
}

TEST(Dropout, EvalModeIsIdentity) {
  RngEngine rng(13);
  Dropout drop(0.5f, rng);
  drop.train(false);
  Tensor x = Tensor::ones({64});
  Tensor y = drop.forward(x);
  for (std::int64_t i = 0; i < 64; ++i) EXPECT_FLOAT_EQ(y.at(i), 1.0f);
}

TEST(Dropout, TrainingDropsAtRate) {
  RngEngine rng(14);
  Dropout drop(0.25f, rng);
  Tensor x = Tensor::ones({4000});
  Tensor y = drop.forward(x);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < 4000; ++i) {
    if (y.at(i) == 0.0f) ++zeros;
  }
  EXPECT_NEAR(zeros / 4000.0, 0.25, 0.03);
}

TEST(Embedding, LookupGathersRows) {
  RngEngine rng(15);
  Embedding emb(10, 4, rng);
  Tensor table = emb.table();
  Tensor out = emb.forward({3, 3, 7});
  EXPECT_EQ(out.shape(), (Shape{3, 4}));
  for (std::int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(0, j), table.at(3, j));
    EXPECT_FLOAT_EQ(out.at(1, j), table.at(3, j));
    EXPECT_FLOAT_EQ(out.at(2, j), table.at(7, j));
  }
  EXPECT_THROW(emb.forward({10}), matsci::Error);
}

TEST(Embedding, GradientFlowsToTable) {
  RngEngine rng(16);
  Embedding emb(5, 3, rng);
  core::sum(emb.forward({1, 1})).backward();
  Tensor g = emb.table().grad();
  // Row 1 used twice -> grad 2; other rows untouched.
  EXPECT_FLOAT_EQ(g.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
}

TEST(MLP, ShapesAndActivationPlacement) {
  RngEngine rng(17);
  MLP mlp({5, 7, 3}, Act::kReLU, rng);
  EXPECT_EQ(mlp.in_features(), 5);
  EXPECT_EQ(mlp.out_features(), 3);
  Tensor x = Tensor::randn({4, 5}, rng);
  Tensor y = mlp.forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 3}));
  // Without activate_last, outputs may be negative (ReLU not applied).
  bool any_negative = false;
  for (const float v : y.span()) {
    if (v < 0.0f) any_negative = true;
  }
  EXPECT_TRUE(any_negative);

  MLP mlp_act({5, 7, 3}, Act::kReLU, rng, /*activate_last=*/true);
  Tensor y2 = mlp_act.forward(x);
  for (const float v : y2.span()) EXPECT_GE(v, 0.0f);
}

TEST(MLP, RejectsTooFewDims) {
  RngEngine rng(18);
  EXPECT_THROW(MLP({4}, Act::kSiLU, rng), matsci::Error);
}

TEST(ResidualMLPBlock, PreservesWidthAndAddsResidual) {
  RngEngine rng(19);
  ResidualMLPBlock block(6, Act::kSELU, 0.0f, rng);
  block.train(false);
  Tensor x = Tensor::randn({3, 6}, rng);
  Tensor y = block.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  // y - x equals the branch output; with fresh random weights the branch
  // is almost surely nonzero, and y must differ from plain branch output.
  EXPECT_GT(matsci::testing::max_abs_diff(y, x), 1e-6);
}

TEST(ResidualMLPBlock, GradFlowsThroughResidualPath) {
  RngEngine rng(20);
  ResidualMLPBlock block(4, Act::kSELU, 0.0f, rng);
  Tensor x = Tensor::randn({2, 4}, rng).set_requires_grad(true);
  core::sum(block.forward(x)).backward();
  // Residual guarantees at least identity gradient.
  bool nonzero = false;
  for (const float g : x.grad_span()) {
    if (g != 0.0f) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

}  // namespace
}  // namespace matsci::nn
