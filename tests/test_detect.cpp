#include <gtest/gtest.h>

#include "core/macros.hpp"
#include "sym/detect.hpp"
#include "sym/symop.hpp"
#include "sym/synthetic_dataset.hpp"

namespace matsci::sym {
namespace {

SyntheticPointGroupOptions clean_options() {
  SyntheticPointGroupOptions opts;
  opts.jitter_sigma = 0.0;
  opts.random_orientation = false;
  return opts;
}

TEST(Detect, InvarianceHelper) {
  // A square in the xy-plane: invariant under C4(z), not under C3(z).
  const std::vector<core::Vec3> square = {
      {1, 0, 0}, {0, 1, 0}, {-1, 0, 0}, {0, -1, 0}};
  EXPECT_TRUE(is_invariant_under(square, rotation_z(4), 1e-9));
  EXPECT_TRUE(is_invariant_under(square, rotation_z(2), 1e-9));
  EXPECT_FALSE(is_invariant_under(square, rotation_z(3), 1e-3));
  EXPECT_TRUE(is_invariant_under(square, inversion(), 1e-9));
}

TEST(Detect, SquareIsD4h) {
  const std::vector<core::Vec3> square = {
      {1, 0, 0}, {0, 1, 0}, {-1, 0, 0}, {0, -1, 0}};
  const DetectionResult det =
      detect_point_group(square, {.tolerance = 1e-6, .align_frame = false});
  EXPECT_EQ(det.name, "D4h");
  EXPECT_EQ(det.matched_operations, 16u);
}

TEST(Detect, OctahedronIsOh) {
  const std::vector<core::Vec3> octa = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                                        {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
  const DetectionResult det =
      detect_point_group(octa, {.tolerance = 1e-6, .align_frame = false});
  EXPECT_EQ(det.name, "Oh");
  EXPECT_EQ(det.matched_operations, 48u);
}

TEST(Detect, AsymmetricCloudIsC1) {
  const std::vector<core::Vec3> blob = {
      {0.3, 1.7, -0.4}, {-1.2, 0.5, 0.9}, {2.1, -0.8, 0.2}, {0.0, 0.6, 1.8}};
  const DetectionResult det =
      detect_point_group(blob, {.tolerance = 1e-6, .align_frame = false});
  EXPECT_EQ(det.name, "C1");
}

TEST(Detect, FindsAtLeastGeneratingGroupOnCleanClouds) {
  // Clean, axis-aligned synthetic clouds: the detector must recover a
  // group at least as large as the generator (accidental placements can
  // create genuine supergroups).
  core::RngEngine rng(3);
  const auto& catalog = point_group_catalog();
  for (int trial = 0; trial < 24; ++trial) {
    const std::int64_t label = rng.next_int(num_point_groups());
    const auto sample = SyntheticPointGroupDataset::generate(
        catalog[static_cast<std::size_t>(label)], label, rng,
        clean_options());
    const DetectionResult det = detect_point_group(
        sample.positions, {.tolerance = 1e-5, .align_frame = false});
    EXPECT_GE(det.matched_operations,
              catalog[static_cast<std::size_t>(label)].order())
        << "generated " << catalog[static_cast<std::size_t>(label)].name
        << ", detected " << det.name;
  }
}

TEST(Detect, ExactOnMostCleanClouds) {
  core::RngEngine rng(7);
  const auto& catalog = point_group_catalog();
  int correct = 0;
  const int trials = 48;
  for (int t = 0; t < trials; ++t) {
    const std::int64_t label = rng.next_int(num_point_groups());
    const auto sample = SyntheticPointGroupDataset::generate(
        catalog[static_cast<std::size_t>(label)], label, rng,
        clean_options());
    const DetectionResult det = detect_point_group(
        sample.positions, {.tolerance = 1e-5, .align_frame = false});
    if (det.label == label) ++correct;
  }
  // A handful of accidental-supergroup cases are expected; the vast
  // majority must match exactly.
  EXPECT_GE(correct, trials * 8 / 10);
}

TEST(Detect, ToleranceAbsorbsSmallJitter) {
  core::RngEngine rng(11);
  const PointGroup& d4h = point_group_by_name("D4h");
  SyntheticPointGroupOptions opts = clean_options();
  opts.jitter_sigma = 0.01;
  const auto sample =
      SyntheticPointGroupDataset::generate(d4h, 0, rng, opts);
  // Tight tolerance misses, loose tolerance recovers the group.
  const DetectionResult tight = detect_point_group(
      sample.positions, {.tolerance = 1e-6, .align_frame = false});
  const DetectionResult loose = detect_point_group(
      sample.positions, {.tolerance = 0.08, .align_frame = false});
  EXPECT_LT(tight.matched_operations, d4h.order());
  EXPECT_GE(loose.matched_operations, d4h.order());
}

TEST(Detect, FrameAlignmentRecoversRotatedClouds) {
  // A rotated square: without alignment the z-axis ops fail; with
  // principal-axis alignment the detector recovers a D4h-compatible
  // answer.
  const core::Mat3 rot = rotation({0.4, 1.0, -0.3}, 0.9);
  std::vector<core::Vec3> square = {
      {1, 0, 0}, {0, 1, 0}, {-1, 0, 0}, {0, -1, 0}};
  for (core::Vec3& p : square) p = core::matvec(rot, p);
  const DetectionResult unaligned =
      detect_point_group(square, {.tolerance = 1e-4, .align_frame = false});
  const DetectionResult aligned =
      detect_point_group(square, {.tolerance = 1e-4, .align_frame = true});
  EXPECT_LT(unaligned.matched_operations, 16u);
  EXPECT_EQ(aligned.name, "D4h");
}

TEST(Detect, Validation) {
  EXPECT_THROW(detect_point_group({}, {}), matsci::Error);
  EXPECT_THROW(detect_point_group({core::Vec3{0, 0, 0}},
                                  {.tolerance = -1.0, .align_frame = false}),
               matsci::Error);
}

}  // namespace
}  // namespace matsci::sym
