#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/ops.hpp"
#include "core/tensor.hpp"

namespace matsci::testing {

/// Finite-difference gradient check: `fn` maps the (leaf) inputs to a
/// scalar tensor. Verifies d(fn)/d(input[i]) against central differences
/// for every coordinate of every input. Inputs must have requires_grad.
inline void gradcheck(
    const std::function<core::Tensor(std::vector<core::Tensor>&)>& fn,
    std::vector<core::Tensor> inputs, double eps = 1e-3, double rtol = 5e-2,
    double atol = 1e-4) {
  // Analytic gradients.
  for (core::Tensor& t : inputs) {
    t.zero_grad();
  }
  core::Tensor out = fn(inputs);
  ASSERT_EQ(out.numel(), 1) << "gradcheck target must be scalar";
  out.backward();

  for (std::size_t ti = 0; ti < inputs.size(); ++ti) {
    core::Tensor& t = inputs[ti];
    ASSERT_TRUE(t.requires_grad());
    auto impl = t.impl();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      const float orig = impl->data[static_cast<std::size_t>(i)];
      impl->data[static_cast<std::size_t>(i)] = orig + static_cast<float>(eps);
      const double up = fn(inputs).item();
      impl->data[static_cast<std::size_t>(i)] = orig - static_cast<float>(eps);
      const double down = fn(inputs).item();
      impl->data[static_cast<std::size_t>(i)] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic =
          impl->grad.empty() ? 0.0
                             : static_cast<double>(
                                   impl->grad[static_cast<std::size_t>(i)]);
      const double tol = atol + rtol * std::max(std::fabs(numeric),
                                                std::fabs(analytic));
      EXPECT_NEAR(analytic, numeric, tol)
          << "input " << ti << " coordinate " << i;
    }
  }
}

/// Max absolute difference between two same-sized tensors.
inline double max_abs_diff(const core::Tensor& a, const core::Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(a.at(i)) - b.at(i)));
  }
  return m;
}

}  // namespace matsci::testing
