// Tests for the toolkit utilities: joint multi-dataset loader, training
// checkpoint/resume, extended-XYZ I/O, standalone metrics, and the
// hyperparameter search helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/macros.hpp"
#include "core/ops.hpp"
#include "data/joint_loader.hpp"
#include "data/tagged.hpp"
#include "materials/carolina.hpp"
#include "materials/lips.hpp"
#include "materials/materials_project.hpp"
#include "materials/xyz.hpp"
#include "models/egnn.hpp"
#include "nn/mlp.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "tasks/metrics.hpp"
#include "test_util.hpp"
#include "train/checkpoint.hpp"
#include "tune/search.hpp"

namespace matsci {
namespace {

using core::RngEngine;
using core::Tensor;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- JointDataLoader -------------------------------------------------------

class JointLoaderFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    mp_ = std::make_shared<data::TaggedDataset>(
        std::make_shared<materials::MaterialsProjectDataset>(24, 1), 0);
    cmd_ = std::make_shared<data::TaggedDataset>(
        std::make_shared<materials::CarolinaMaterialsDataset>(12, 2), 1);
    data::DataLoaderOptions lo;
    lo.batch_size = 4;
    lo.seed = 5;
    lo.collate.radius.cutoff = 4.0;
    mp_loader_ = std::make_unique<data::DataLoader>(*mp_, lo);
    cmd_loader_ = std::make_unique<data::DataLoader>(*cmd_, lo);
  }

  std::shared_ptr<data::TaggedDataset> mp_, cmd_;
  std::unique_ptr<data::DataLoader> mp_loader_, cmd_loader_;
};

TEST_F(JointLoaderFixture, RoundRobinCoversEverythingOnce) {
  data::JointDataLoader joint({mp_loader_.get(), cmd_loader_.get()},
                              data::SchedulePolicy::kRoundRobin);
  EXPECT_EQ(joint.num_batches(),
            mp_loader_->num_batches() + cmd_loader_->num_batches());
  // First slots alternate while both have batches (6 vs 3 batches).
  EXPECT_EQ(joint.loader_index(0), 0);
  EXPECT_EQ(joint.loader_index(1), 1);
  EXPECT_EQ(joint.loader_index(2), 0);
  EXPECT_EQ(joint.loader_index(3), 1);
  // After the shorter loader is exhausted, only the longer one remains.
  EXPECT_EQ(joint.loader_index(joint.num_batches() - 1), 0);
  // Dataset ids route correctly.
  EXPECT_EQ(joint.batch(0).dataset_id, 0);
  EXPECT_EQ(joint.batch(1).dataset_id, 1);
}

TEST_F(JointLoaderFixture, ProportionalShuffleDeterministicPerEpoch) {
  data::JointDataLoader a({mp_loader_.get(), cmd_loader_.get()},
                          data::SchedulePolicy::kProportionalShuffle, 9);
  std::vector<std::int64_t> order_a;
  for (std::int64_t i = 0; i < a.num_batches(); ++i) {
    order_a.push_back(a.loader_index(i));
  }
  // Same seed, same schedule.
  data::JointDataLoader b({mp_loader_.get(), cmd_loader_.get()},
                          data::SchedulePolicy::kProportionalShuffle, 9);
  for (std::int64_t i = 0; i < b.num_batches(); ++i) {
    EXPECT_EQ(order_a[static_cast<std::size_t>(i)], b.loader_index(i));
  }
  // Different epoch changes the order but not the composition.
  a.set_epoch(1);
  std::vector<std::int64_t> order_e1;
  std::int64_t mp_count = 0;
  for (std::int64_t i = 0; i < a.num_batches(); ++i) {
    order_e1.push_back(a.loader_index(i));
    mp_count += a.loader_index(i) == 0 ? 1 : 0;
  }
  EXPECT_NE(order_a, order_e1);
  EXPECT_EQ(mp_count, mp_loader_->num_batches());
}

TEST_F(JointLoaderFixture, Validation) {
  EXPECT_THROW(
      data::JointDataLoader({}, data::SchedulePolicy::kRoundRobin),
      matsci::Error);
  data::JointDataLoader joint({mp_loader_.get()},
                              data::SchedulePolicy::kRoundRobin);
  EXPECT_THROW(joint.batch(joint.num_batches()), matsci::Error);
}

// --- Training checkpoint / resume ------------------------------------------

TEST(TrainingCheckpoint, RoundTripRestoresExactTrajectory) {
  // Train A for 4 steps, checkpoint after step 2, restore into B and run
  // the remaining 2 steps: A and B must end bit-identical.
  auto make_setup = [](std::uint64_t seed) {
    RngEngine rng(seed);
    auto mlp = std::make_shared<nn::MLP>(std::vector<std::int64_t>{4, 8, 1},
                                         nn::Act::kSiLU, rng);
    return mlp;
  };
  RngEngine data_rng(3);
  Tensor x = Tensor::randn({16, 4}, data_rng);
  Tensor y = Tensor::randn({16, 1}, data_rng);
  auto step_once = [&](nn::MLP& mlp, optim::Adam& opt) {
    opt.zero_grad();
    core::mse_loss(mlp.forward(x), y).backward();
    opt.step();
  };

  const std::string path = temp_path("matsci_train_ckpt.msck");
  auto a = make_setup(1);
  optim::Adam opt_a = optim::make_adamw(a->parameters(), 1e-2);
  step_once(*a, opt_a);
  step_once(*a, opt_a);
  train::save_training_checkpoint(path, *a, opt_a, /*epoch=*/2);
  step_once(*a, opt_a);
  step_once(*a, opt_a);

  auto b = make_setup(99);  // different init — must be overwritten
  optim::Adam opt_b = optim::make_adamw(b->parameters(), 123.0);
  const std::int64_t epoch = train::resume_training(path, *b, opt_b);
  EXPECT_EQ(epoch, 2);
  EXPECT_EQ(opt_b.step_count(), 2);
  // lr round-trips through fp32 storage.
  EXPECT_NEAR(opt_b.lr(), opt_a.lr(), 1e-8);
  step_once(*b, opt_b);
  step_once(*b, opt_b);

  const auto pa = a->parameters();
  const auto pb = b->parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(matsci::testing::max_abs_diff(pa[i], pb[i]), 1e-7)
        << "trajectory diverged at parameter " << i;
  }
  std::remove(path.c_str());
}

TEST(TrainingCheckpoint, SaveLoadBitExactIncludingReservedPrefixes) {
  // save → load must reproduce the model StateDict bit-for-bit, the
  // epoch, and every optimizer buffer stored under the reserved
  // "__optim__/" prefix ("__meta__/" holds the epoch).
  RngEngine rng(21);
  auto mlp = std::make_shared<nn::MLP>(std::vector<std::int64_t>{4, 6, 1},
                                       nn::Act::kSiLU, rng);
  optim::Adam opt = optim::make_adamw(mlp->parameters(), 2e-3);
  Tensor x = Tensor::randn({8, 4}, rng);
  Tensor y = Tensor::randn({8, 1}, rng);
  opt.zero_grad();
  core::mse_loss(mlp->forward(x), y).backward();
  opt.step();  // materialize non-trivial moment buffers

  const std::string path = temp_path("matsci_bitexact_ckpt.msck");
  train::save_training_checkpoint(path, *mlp, opt, /*epoch=*/7);

  const train::TrainingCheckpoint ckpt =
      train::load_training_checkpoint(path);
  EXPECT_EQ(ckpt.epoch, 7);

  const nn::StateDict expected_model = nn::state_dict(*mlp);
  ASSERT_EQ(ckpt.model.size(), expected_model.size());
  for (const auto& [name, tensor] : expected_model) {
    ASSERT_TRUE(ckpt.model.count(name)) << "missing parameter " << name;
    const Tensor& loaded = ckpt.model.at(name);
    ASSERT_EQ(loaded.numel(), tensor.numel()) << name;
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      EXPECT_EQ(loaded.at(i), tensor.at(i)) << name << "[" << i << "]";
    }
  }

  const optim::OptimizerState expected_opt = opt.export_state();
  ASSERT_EQ(ckpt.optimizer.size(), expected_opt.size());
  for (const auto& [name, values] : expected_opt) {
    ASSERT_TRUE(ckpt.optimizer.count(name)) << "missing buffer " << name;
    EXPECT_EQ(ckpt.optimizer.at(name), values) << name;
  }

  // The model-only loader strips both reserved prefixes.
  const nn::StateDict model_only = train::load_model_state(path);
  EXPECT_EQ(model_only.size(), expected_model.size());
  for (const auto& [name, _] : model_only) {
    EXPECT_EQ(name.rfind("__optim__/", 0), std::string::npos) << name;
    EXPECT_EQ(name.rfind("__meta__/", 0), std::string::npos) << name;
  }
  std::remove(path.c_str());
}

TEST(TrainingCheckpoint, SgdMomentumRoundTrip) {
  RngEngine rng(7);
  auto mlp = std::make_shared<nn::MLP>(std::vector<std::int64_t>{3, 3},
                                       nn::Act::kReLU, rng);
  optim::SGD opt(mlp->parameters(), {.lr = 0.1, .momentum = 0.9});
  Tensor x = Tensor::randn({4, 3}, rng);
  opt.zero_grad();
  core::sum(core::square(mlp->forward(x))).backward();
  opt.step();

  const optim::OptimizerState state = opt.export_state();
  EXPECT_TRUE(state.count("momentum.0"));
  optim::SGD fresh(mlp->parameters(), {.lr = 0.1, .momentum = 0.9});
  fresh.import_state(state);
  EXPECT_EQ(fresh.step_count(), 1);
  EXPECT_EQ(fresh.export_state().at("momentum.0"), state.at("momentum.0"));
}

TEST(TrainingCheckpoint, RejectsNonTrainingCheckpoint) {
  RngEngine rng(8);
  nn::MLP mlp({2, 2}, nn::Act::kSiLU, rng);
  const std::string path = temp_path("matsci_plain_model.msck");
  nn::save_state_dict(nn::state_dict(mlp), path);
  EXPECT_THROW(train::load_training_checkpoint(path), matsci::Error);
  std::remove(path.c_str());
}

// --- XYZ I/O ----------------------------------------------------------------

TEST(Xyz, RoundTripPeriodicSampleWithTargets) {
  materials::MaterialsProjectDataset ds(4, 11);
  const data::StructureSample original = ds.get(2);

  std::stringstream ss;
  materials::write_xyz(ss, original);
  data::StructureSample loaded;
  ASSERT_TRUE(materials::read_xyz(ss, loaded));

  ASSERT_EQ(loaded.num_atoms(), original.num_atoms());
  EXPECT_EQ(loaded.species, original.species);
  for (std::int64_t a = 0; a < original.num_atoms(); ++a) {
    EXPECT_NEAR(core::norm(loaded.positions[static_cast<std::size_t>(a)] -
                           original.positions[static_cast<std::size_t>(a)]),
                0.0, 1e-7);
  }
  ASSERT_TRUE(loaded.lattice.has_value());
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR((*loaded.lattice)[r][c], (*original.lattice)[r][c], 1e-7);
    }
  }
  for (const auto& [key, value] : original.scalar_targets) {
    ASSERT_TRUE(loaded.scalar_targets.count(key)) << key;
    EXPECT_NEAR(loaded.scalar_targets.at(key), value, 1e-4);
  }
  EXPECT_EQ(loaded.class_targets.at("stability"),
            original.class_targets.at("stability"));
}

TEST(Xyz, MultiFrameFileRoundTrip) {
  materials::LiPSDataset lips(3, 5);
  std::vector<data::StructureSample> frames;
  for (std::int64_t i = 0; i < 3; ++i) {
    auto s = lips.get(i);
    s.forces.clear();  // forces are not part of the XYZ contract here
    frames.push_back(std::move(s));
  }
  const std::string path = temp_path("matsci_traj.xyz");
  materials::write_xyz_file(path, frames);
  const auto loaded = materials::read_xyz_file(path);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(loaded[f].species, frames[f].species);
    EXPECT_NEAR(loaded[f].scalar_targets.at("energy"),
                frames[f].scalar_targets.at("energy"), 1e-4);
  }
  std::remove(path.c_str());
}

TEST(Xyz, SyntheticSpeciesZeroUsesPlaceholder) {
  data::StructureSample s;
  s.species = {0, 1};
  s.positions = {{0, 0, 0}, {1, 0, 0}};
  std::stringstream ss;
  materials::write_xyz(ss, s);
  EXPECT_NE(ss.str().find("X 0"), std::string::npos);
  data::StructureSample loaded;
  ASSERT_TRUE(materials::read_xyz(ss, loaded));
  EXPECT_EQ(loaded.species, (std::vector<std::int64_t>{0, 1}));
}

TEST(Xyz, MalformedInputThrows) {
  std::stringstream bad1("not_a_number\ncomment\n");
  data::StructureSample s;
  EXPECT_THROW(materials::read_xyz(bad1, s), matsci::Error);
  std::stringstream bad2("2\ncomment\nH 0 0 0\n");  // missing second atom
  EXPECT_THROW(materials::read_xyz(bad2, s), matsci::Error);
  std::stringstream empty("");
  EXPECT_FALSE(materials::read_xyz(empty, s));
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, RegressionValues) {
  const std::vector<float> pred = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> target = {1.5f, 2.0f, 2.5f, 5.0f};
  EXPECT_NEAR(tasks::mean_absolute_error(pred, target),
              (0.5 + 0.0 + 0.5 + 1.0) / 4.0, 1e-9);
  EXPECT_NEAR(tasks::root_mean_squared_error(pred, target),
              std::sqrt((0.25 + 0.0 + 0.25 + 1.0) / 4.0), 1e-7);
  // Perfect prediction: R² = 1, Pearson = 1.
  EXPECT_NEAR(tasks::r2_score(target, target), 1.0, 1e-9);
  EXPECT_NEAR(tasks::pearson_correlation(target, target), 1.0, 1e-9);
  // Predicting the mean: R² = 0.
  const float mean = (1.5f + 2.0f + 2.5f + 5.0f) / 4.0f;
  const std::vector<float> mean_pred(4, mean);
  EXPECT_NEAR(tasks::r2_score(mean_pred, target), 0.0, 1e-6);
  EXPECT_THROW(tasks::mean_absolute_error({}, {}), matsci::Error);
}

TEST(Metrics, ConfusionAndF1) {
  const std::vector<std::int64_t> pred = {1, 1, 0, 0, 1, 0};
  const std::vector<std::int64_t> target = {1, 0, 0, 1, 1, 0};
  const tasks::ConfusionCounts c = tasks::confusion_counts(pred, target);
  EXPECT_EQ(c.true_positive, 2);
  EXPECT_EQ(c.false_positive, 1);
  EXPECT_EQ(c.false_negative, 1);
  EXPECT_EQ(c.true_negative, 2);
  EXPECT_NEAR(c.accuracy(), 4.0 / 6.0, 1e-9);
  EXPECT_NEAR(c.precision(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(c.recall(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(c.f1(), 2.0 / 3.0, 1e-9);
  const std::vector<std::int64_t> bad_pred = {2};
  const std::vector<std::int64_t> bad_target = {1};
  EXPECT_THROW(tasks::confusion_counts(bad_pred, bad_target), matsci::Error);
  // Degenerate cases return 0, not NaN.
  const std::vector<std::int64_t> zeros = {0, 0};
  const tasks::ConfusionCounts none = tasks::confusion_counts(zeros, zeros);
  EXPECT_EQ(none.precision(), 0.0);
  EXPECT_EQ(none.f1(), 0.0);
}

// --- tune -------------------------------------------------------------------

TEST(Tune, CartesianGridEnumeratesAll) {
  const auto grid = tune::cartesian_grid(
      {{"lr", {1e-3, 1e-2}}, {"batch", {8, 16, 32}}});
  EXPECT_EQ(grid.size(), 6u);
  // Each combination appears exactly once.
  std::set<std::pair<double, double>> seen;
  for (const auto& p : grid) {
    seen.insert({p.at("lr"), p.at("batch")});
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Tune, GridSearchFindsKnownMinimum) {
  // Objective: (lr - 0.01)² + (batch - 16)² / 1000.
  const auto grid = tune::cartesian_grid(
      {{"lr", {0.001, 0.01, 0.1}}, {"batch", {8, 16, 32}}});
  const auto results = tune::grid_search(grid, [](const tune::ParamSet& p) {
    const double dl = p.at("lr") - 0.01;
    const double db = p.at("batch") - 16.0;
    return dl * dl + db * db / 1000.0;
  });
  const auto& best = tune::best_trial(results);
  EXPECT_DOUBLE_EQ(best.params.at("lr"), 0.01);
  EXPECT_DOUBLE_EQ(best.params.at("batch"), 16.0);
  EXPECT_FALSE(tune::format_results(results).empty());
}

TEST(Tune, RandomSearchRespectsRangesAndLogScale) {
  const auto results = tune::random_search(
      {{"lr", {1e-5, 1e-1, /*log_scale=*/true}},
       {"dropout", {0.0, 0.5, false}}},
      64, /*seed=*/3, [](const tune::ParamSet& p) { return p.at("lr"); });
  ASSERT_EQ(results.size(), 64u);
  int small_lr = 0;
  for (const auto& r : results) {
    EXPECT_GE(r.params.at("lr"), 1e-5);
    EXPECT_LE(r.params.at("lr"), 1e-1);
    EXPECT_GE(r.params.at("dropout"), 0.0);
    EXPECT_LE(r.params.at("dropout"), 0.5);
    if (r.params.at("lr") < 1e-3) ++small_lr;
  }
  // Log-uniform: half the draws land below the geometric midpoint 1e-3.
  EXPECT_GT(small_lr, 16);
  EXPECT_LT(small_lr, 48);
  // Determinism.
  const auto again = tune::random_search(
      {{"lr", {1e-5, 1e-1, true}}, {"dropout", {0.0, 0.5, false}}}, 64, 3,
      [](const tune::ParamSet& p) { return p.at("lr"); });
  EXPECT_DOUBLE_EQ(results[10].params.at("lr"), again[10].params.at("lr"));
}

TEST(Tune, Validation) {
  EXPECT_THROW(tune::cartesian_grid({}), matsci::Error);
  EXPECT_THROW(tune::cartesian_grid({{"a", {}}}), matsci::Error);
  EXPECT_THROW(tune::best_trial({}), matsci::Error);
  EXPECT_THROW(tune::random_search({{"lr", {-1.0, 1.0, true}}}, 4, 1,
                                   [](const tune::ParamSet&) { return 0.0; }),
               matsci::Error);
}

}  // namespace
}  // namespace matsci
