// The runtime-dispatched kernel backend and the tensor memory runtime
// (ctest label `backend`): dispatch resolution and forced fallback,
// scalar-backend bit-compatibility with the legacy serial kernels,
// scalar-vs-SIMD agreement (bit-exact for pointwise IEEE ops, tolerance
// for reassociating/polynomial kernels), 64-byte buffer alignment, pool
// reuse, and the zero-fresh-allocation steady state of fixed-shape
// train/serve loops. Also run under -DMATSCI_SANITIZE=address (the
// pool's recycled buffers must not mask lifetime bugs with
// MATSCI_TENSOR_POOL=0).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/backend/backend.hpp"
#include "core/graph_ops.hpp"
#include "core/memory/arena.hpp"
#include "core/memory/pool.hpp"
#include "core/memory/storage.hpp"
#include "core/ops.hpp"
#include "core/random.hpp"
#include "core/tensor.hpp"
#include "data/collate.hpp"
#include "graph/radius_graph.hpp"
#include "models/egnn.hpp"
#include "sym/synthetic_dataset.hpp"

namespace {

using namespace matsci;
namespace bk = core::backend;
namespace mem = core::memory;

/// Restores the active backend on scope exit so one test's forced
/// fallback never leaks into the next.
class BackendGuard {
 public:
  BackendGuard() : saved_(bk::active_backend()) {}
  ~BackendGuard() { bk::set_backend(saved_); }

 private:
  bk::Backend saved_;
};

std::vector<bk::Backend> supported_backends() {
  std::vector<bk::Backend> out;
  for (int i = 0; i < bk::kNumBackends; ++i) {
    const auto b = static_cast<bk::Backend>(i);
    if (bk::backend_supported(b)) out.push_back(b);
  }
  return out;
}

std::vector<float> tensor_bits(const core::Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.numel());
}

bool bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// |got - ref| <= tol * max(1, |ref|), elementwise.
void expect_close(const std::vector<float>& ref, const std::vector<float>& got,
                  float tol, const char* what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float bound = tol * std::max(1.0f, std::fabs(ref[i]));
    ASSERT_NEAR(ref[i], got[i], bound) << what << " at index " << i;
  }
}

// --- dispatch ---------------------------------------------------------------

TEST(BackendDispatch, ScalarIsAlwaysCompiledAndSupported) {
  EXPECT_TRUE(bk::backend_compiled(bk::Backend::kScalar));
  EXPECT_TRUE(bk::backend_supported(bk::Backend::kScalar));
  EXPECT_TRUE(bk::backend_supported(bk::best_supported()));
  EXPECT_TRUE(bk::backend_supported(bk::active_backend()));
}

TEST(BackendDispatch, ActiveTableMatchesActiveBackend) {
  EXPECT_STREQ(bk::kernels().name, bk::backend_name(bk::active_backend()));
}

TEST(BackendDispatch, ParseBackendRoundTripsNames) {
  for (const bk::Backend b : supported_backends()) {
    const auto parsed = bk::parse_backend(bk::backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(bk::parse_backend("auto").has_value());  // dispatcher-only
  EXPECT_FALSE(bk::parse_backend("sse9").has_value());
  EXPECT_FALSE(bk::parse_backend("").has_value());
}

TEST(BackendDispatch, SetBackendSwitchesTheKernelTable) {
  BackendGuard guard;
  for (const bk::Backend b : supported_backends()) {
    bk::set_backend(b);
    EXPECT_EQ(bk::active_backend(), b);
    EXPECT_STREQ(bk::kernels().name, bk::backend_name(b));
  }
}

TEST(BackendDispatch, SetBackendRejectsUnsupportedTiers) {
  for (int i = 0; i < bk::kNumBackends; ++i) {
    const auto b = static_cast<bk::Backend>(i);
    if (!bk::backend_supported(b)) {
      EXPECT_THROW(bk::set_backend(b), matsci::Error);
    }
  }
}

// --- scalar backend == legacy serial numerics -------------------------------

TEST(BackendScalar, MatmulMatchesLegacySerialLoopBitForBit) {
  // The forced-fallback contract: the scalar backend reproduces the
  // pre-backend serial kernel exactly — same loop nest (i, l-skip-zero,
  // j), same accumulation order — so MATSCI_KERNEL_BACKEND=scalar is a
  // bit-exact escape hatch, not an approximation.
  BackendGuard guard;
  bk::set_backend(bk::Backend::kScalar);

  core::RngEngine rng(71);
  const std::int64_t n = 37, k = 23, m = 29;  // awkward non-vector shapes
  core::Tensor a = core::Tensor::randn({n, k}, rng);
  core::Tensor b = core::Tensor::randn({k, m}, rng);
  a.data()[5] = 0.0f;  // exercise the zero-skip shortcut
  a.data()[k + 1] = 0.0f;

  std::vector<float> expected(static_cast<std::size_t>(n * m), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t l = 0; l < k; ++l) {
      const float av = a.data()[i * k + l];
      if (av == 0.0f) continue;
      for (std::int64_t j = 0; j < m; ++j) {
        expected[static_cast<std::size_t>(i * m + j)] += av * b.data()[l * m + j];
      }
    }
  }

  core::NoGradGuard no_grad;
  EXPECT_TRUE(bit_identical(expected, tensor_bits(core::matmul(a, b))));
}

TEST(BackendScalar, TranscendentalsUseLibm) {
  BackendGuard guard;
  bk::set_backend(bk::Backend::kScalar);
  core::RngEngine rng(72);
  core::Tensor x = core::Tensor::randn({13, 17}, rng);
  core::NoGradGuard no_grad;
  const std::vector<float> got = tensor_bits(core::exp(x));
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], std::exp(x.data()[i]));
  }
}

// --- scalar vs SIMD agreement -----------------------------------------------

TEST(BackendAgreement, PointwiseOpsAreBitIdenticalAcrossBackends) {
  BackendGuard guard;
  core::RngEngine rng(73);
  // Odd sizes so every SIMD kernel runs both its vector body and its
  // scalar tail.
  core::Tensor a = core::Tensor::randn({37, 27}, rng);
  core::Tensor b = core::Tensor::randn({37, 27}, rng);
  core::Tensor row = core::Tensor::randn({1, 27}, rng);
  core::Tensor pos = core::abs(core::add_scalar(core::abs(a), 0.1f));
  std::vector<std::int64_t> idx(100);
  for (auto& i : idx) i = rng.next_int(37);

  const auto run_all = [&] {
    core::NoGradGuard no_grad;
    std::vector<std::vector<float>> r;
    r.push_back(tensor_bits(core::add(a, b)));
    r.push_back(tensor_bits(core::sub(a, b)));
    r.push_back(tensor_bits(core::mul(a, b)));
    r.push_back(tensor_bits(core::div(a, b)));
    r.push_back(tensor_bits(core::add(a, row)));  // kRow broadcast
    r.push_back(tensor_bits(core::abs(a)));
    r.push_back(tensor_bits(core::square(a)));
    r.push_back(tensor_bits(core::sqrt(pos)));
    r.push_back(tensor_bits(core::rsqrt(pos)));
    r.push_back(tensor_bits(core::relu(a)));
    r.push_back(tensor_bits(core::clamp(a, -0.5f, 0.5f)));
    r.push_back(tensor_bits(core::add_scalar(a, 1.25f)));
    r.push_back(tensor_bits(core::mul_scalar(a, -3.0f)));
    r.push_back(tensor_bits(core::gather_rows(a, idx)));
    r.push_back(tensor_bits(core::scatter_add_rows(
        core::gather_rows(a, idx), idx, 37)));
    return r;
  };

  bk::set_backend(bk::Backend::kScalar);
  const auto reference = run_all();
  for (const bk::Backend backend : supported_backends()) {
    if (backend == bk::Backend::kScalar) continue;
    bk::set_backend(backend);
    const auto got = run_all();
    ASSERT_EQ(reference.size(), got.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(bit_identical(reference[i], got[i]))
          << "pointwise op #" << i << " differs under "
          << bk::backend_name(backend);
    }
  }
}

TEST(BackendAgreement, ReassociatingKernelsAgreeToTolerance) {
  BackendGuard guard;
  core::RngEngine rng(74);
  core::Tensor a = core::Tensor::randn({53, 67}, rng);
  core::Tensor b = core::Tensor::randn({67, 41}, rng);
  core::Tensor x = core::Tensor::randn({31, 43}, rng);
  core::Tensor d = core::abs(core::Tensor::randn({97, 1}, rng));
  std::vector<float> centers;
  for (int i = 0; i < 19; ++i) centers.push_back(0.1f * static_cast<float>(i));

  const auto run_all = [&] {
    core::NoGradGuard no_grad;
    std::vector<std::vector<float>> r;
    r.push_back(tensor_bits(core::matmul(a, b)));
    r.push_back(tensor_bits(core::sum(x)));
    r.push_back(tensor_bits(core::sum_dim(x, 0)));
    r.push_back(tensor_bits(core::sum_dim(x, 1)));
    r.push_back(tensor_bits(core::softmax_rows(x)));
    r.push_back(tensor_bits(core::exp(x)));
    r.push_back(tensor_bits(core::sigmoid(x)));
    r.push_back(tensor_bits(core::tanh(x)));
    r.push_back(tensor_bits(core::silu(x)));
    r.push_back(tensor_bits(core::gaussian_rbf(d, centers, 4.0f)));
    return r;
  };

  bk::set_backend(bk::Backend::kScalar);
  const auto reference = run_all();
  for (const bk::Backend backend : supported_backends()) {
    if (backend == bk::Backend::kScalar) continue;
    bk::set_backend(backend);
    const auto got = run_all();
    ASSERT_EQ(reference.size(), got.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      expect_close(reference[i], got[i], 2e-5f, bk::backend_name(backend));
    }
  }
}

TEST(BackendAgreement, GradientsAgreeToToleranceAcrossBackends) {
  // One composite touching matmul_nn/nt/tn, unary_grad, binary_grad and
  // the reduction backward.
  BackendGuard guard;
  core::RngEngine rng(75);
  const std::vector<float> xv = tensor_bits(core::Tensor::randn({21, 33}, rng));
  const std::vector<float> wv = tensor_bits(core::Tensor::randn({33, 17}, rng));

  const auto grads = [&] {
    core::Tensor x = core::Tensor::from_vector(xv, {21, 33});
    core::Tensor w = core::Tensor::from_vector(wv, {33, 17});
    x.set_requires_grad(true);
    w.set_requires_grad(true);
    core::sum(core::silu(core::matmul(x, w))).backward();
    std::vector<float> out = tensor_bits(x.grad());
    const std::vector<float> gw = tensor_bits(w.grad());
    out.insert(out.end(), gw.begin(), gw.end());
    return out;
  };

  bk::set_backend(bk::Backend::kScalar);
  const std::vector<float> reference = grads();
  for (const bk::Backend backend : supported_backends()) {
    if (backend == bk::Backend::kScalar) continue;
    bk::set_backend(backend);
    expect_close(reference, grads(), 2e-5f, bk::backend_name(backend));
  }
}

TEST(BackendAgreement, RadiusGraphEdgesIdenticalAcrossBackends) {
  // Free-boundary squared distances are pointwise IEEE arithmetic, so
  // the edge list (a set of threshold decisions) must match exactly.
  // The periodic variant is tolerance-only (vectorized round) and is
  // covered by the geometry tests in test_graph.cpp.
  BackendGuard guard;
  core::RngEngine rng(76);
  std::vector<core::Vec3> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0, 8), rng.uniform(0, 8), rng.uniform(0, 8)});
  }
  graph::RadiusGraphOptions opts;
  opts.cutoff = 2.5;
  opts.max_neighbors = 10;

  bk::set_backend(bk::Backend::kScalar);
  const graph::Graph reference = graph::build_radius_graph(pts, opts);
  for (const bk::Backend backend : supported_backends()) {
    if (backend == bk::Backend::kScalar) continue;
    bk::set_backend(backend);
    const graph::Graph got = graph::build_radius_graph(pts, opts);
    EXPECT_EQ(reference.src, got.src) << bk::backend_name(backend);
    EXPECT_EQ(reference.dst, got.dst) << bk::backend_name(backend);
  }
}

// --- memory runtime ---------------------------------------------------------

TEST(BackendMemory, StorageBuffersAre64ByteAligned) {
  for (const std::size_t n : {1ul, 17ul, 1000ul, 65536ul}) {
    mem::FloatStorage f = mem::FloatStorage::uninitialized(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f.data()) %
                  mem::kBufferAlignment,
              0u);
    mem::DoubleStorage d = mem::DoubleStorage::uninitialized(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) %
                  mem::kBufferAlignment,
              0u);
  }
  core::RngEngine rng(77);
  core::Tensor t = core::Tensor::randn({13, 5}, rng);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) %
                mem::kBufferAlignment,
            0u);
}

TEST(BackendMemory, SizeClassLadderIsPowersOfTwoPlusMidpoints) {
  EXPECT_EQ(mem::round_up_to_class(1), 64u);
  EXPECT_EQ(mem::round_up_to_class(64), 64u);
  EXPECT_EQ(mem::round_up_to_class(65), 96u);
  EXPECT_EQ(mem::round_up_to_class(96), 96u);
  EXPECT_EQ(mem::round_up_to_class(97), 128u);
  EXPECT_EQ(mem::round_up_to_class(1000), 1024u);
  EXPECT_EQ(mem::round_up_to_class(1537), 2048u);
  // Internal waste never exceeds 1/3 of the handed-out capacity (above
  // the 64-byte minimum class, where tiny requests round up further).
  for (std::size_t bytes = 64; bytes < (1u << 20); bytes = bytes * 5 / 3 + 7) {
    const std::size_t cls = mem::round_up_to_class(bytes);
    EXPECT_GE(cls, bytes);
    EXPECT_LE(cls, bytes + (bytes + 1) / 2);
  }
}

TEST(BackendMemory, PoolReusesBuffersAfterWarmup) {
  mem::BufferPool& pool = mem::BufferPool::global();
  if (!pool.enabled()) GTEST_SKIP() << "MATSCI_TENSOR_POOL=0";

  { mem::FloatStorage warm = mem::FloatStorage::uninitialized(4096); }

  const mem::PoolStats before = pool.stats();
  for (int i = 0; i < 100; ++i) {
    mem::FloatStorage s = mem::FloatStorage::uninitialized(4096);
    s.data()[0] = static_cast<float>(i);  // keep the buffer observable
  }
  const mem::PoolStats after = pool.stats();
  EXPECT_EQ(after.fresh_allocs, before.fresh_allocs);
  EXPECT_GE(after.hits, before.hits + 100);
}

TEST(BackendMemory, TrimReleasesIdleBuffersThenRefills) {
  mem::BufferPool& pool = mem::BufferPool::global();
  if (!pool.enabled()) GTEST_SKIP() << "MATSCI_TENSOR_POOL=0";

  { mem::FloatStorage warm = mem::FloatStorage::uninitialized(8192); }
  pool.trim();
  EXPECT_EQ(pool.stats().bytes_cached, 0u);

  const std::uint64_t fresh_before = pool.stats().fresh_allocs;
  { mem::FloatStorage again = mem::FloatStorage::uninitialized(8192); }
  EXPECT_GT(pool.stats().fresh_allocs, fresh_before);  // cache was emptied
  EXPECT_GT(pool.stats().bytes_cached, 0u);            // and refilled
}

/// Fixed-shape EGNN batch for the steady-state loops.
data::Batch make_steady_batch() {
  sym::SyntheticPointGroupDataset ds(12, 78);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < 12; ++i) samples.push_back(ds.get(i));
  data::CollateOptions copts;
  copts.representation = data::Representation::kPointCloud;
  return data::collate(samples, copts);
}

TEST(BackendMemory, ServeStepIsAllocationFreeAfterWarmup) {
  mem::BufferPool& pool = mem::BufferPool::global();
  if (!pool.enabled()) GTEST_SKIP() << "MATSCI_TENSOR_POOL=0";

  core::RngEngine rng(79);
  models::EGNNConfig cfg;
  cfg.hidden_dim = 32;
  cfg.pos_hidden = 8;
  cfg.num_layers = 2;
  models::EGNN encoder(cfg, rng);
  const data::Batch batch = make_steady_batch();

  core::NoGradGuard no_grad;
  for (int i = 0; i < 3; ++i) encoder.encode(batch);  // warmup

  const std::uint64_t fresh = pool.stats().fresh_allocs;
  for (int i = 0; i < 5; ++i) encoder.encode(batch);
  EXPECT_EQ(pool.stats().fresh_allocs, fresh)
      << "inference step still hits the heap in steady state";
}

TEST(BackendMemory, TrainStepIsAllocationFreeAfterWarmup) {
  mem::BufferPool& pool = mem::BufferPool::global();
  if (!pool.enabled()) GTEST_SKIP() << "MATSCI_TENSOR_POOL=0";

  core::RngEngine rng(80);
  models::EGNNConfig cfg;
  cfg.hidden_dim = 32;
  cfg.pos_hidden = 8;
  cfg.num_layers = 2;
  models::EGNN encoder(cfg, rng);
  const data::Batch batch = make_steady_batch();

  const auto step = [&] {
    encoder.zero_grad();
    core::Tensor loss = core::mean(core::square(encoder.encode(batch)));
    loss.backward();
    return loss.item();
  };
  for (int i = 0; i < 3; ++i) step();  // warmup: pool + arena fill up

  mem::Arena& arena = mem::Arena::thread_local_arena();
  const std::uint64_t fresh = pool.stats().fresh_allocs;
  const std::uint64_t chunks = arena.chunks_allocated();
  for (int i = 0; i < 5; ++i) step();
  EXPECT_EQ(pool.stats().fresh_allocs, fresh)
      << "train step still takes fresh pool allocations in steady state";
  EXPECT_EQ(arena.chunks_allocated(), chunks)
      << "backward traversal still grows the arena in steady state";
}

}  // namespace
