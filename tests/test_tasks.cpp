#include <gtest/gtest.h>

#include <cmath>

#include "core/macros.hpp"
#include "data/dataloader.hpp"
#include "materials/carolina.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "sym/synthetic_dataset.hpp"
#include "tasks/classification.hpp"
#include "tasks/multitask.hpp"
#include "tasks/regression.hpp"

namespace matsci::tasks {
namespace {

using core::RngEngine;

std::shared_ptr<models::EGNN> tiny_encoder(std::uint64_t seed) {
  RngEngine rng(seed);
  models::EGNNConfig cfg;
  cfg.hidden_dim = 16;
  cfg.pos_hidden = 8;
  cfg.num_layers = 2;
  return std::make_shared<models::EGNN>(cfg, rng);
}

models::OutputHeadConfig tiny_head() {
  models::OutputHeadConfig cfg;
  cfg.hidden_dim = 16;
  cfg.num_blocks = 1;
  return cfg;
}

data::Batch mp_batch(std::int64_t n = 8, std::int64_t dataset_id = 0) {
  materials::MaterialsProjectDataset ds(n, 31);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < n; ++i) {
    auto s = ds.get(i);
    s.dataset_id = dataset_id;
    samples.push_back(std::move(s));
  }
  data::CollateOptions opts;
  opts.radius.cutoff = 4.0;
  return data::collate(samples, opts);
}

TEST(RegressionTask, StepProducesLossAndMae) {
  RngEngine rng(1);
  ScalarRegressionTask task(tiny_encoder(1), "band_gap", tiny_head(), rng,
                            {1.0f, 1.0f});
  const TaskOutput out = task.step(mp_batch());
  EXPECT_TRUE(out.loss.defined());
  EXPECT_TRUE(std::isfinite(out.loss.item()));
  EXPECT_GT(out.metrics.at("mae"), 0.0);
  EXPECT_EQ(out.count, 8);
  // Gradients flow to both encoder and head.
  out.loss.backward();
  bool any = false;
  for (core::Tensor p : task.parameters()) {
    for (const float g : p.grad_span()) {
      if (g != 0.0f) any = true;
    }
  }
  EXPECT_TRUE(any);
}

TEST(RegressionTask, MaeReportedInPhysicalUnits) {
  RngEngine rng(2);
  // With stats (mean=0, std=10), an untrained model predicting ~0 in
  // normalized units must show MAE on the scale of the raw targets.
  data::TargetStats stats{0.0f, 10.0f};
  ScalarRegressionTask task(tiny_encoder(2), "band_gap", tiny_head(), rng,
                            stats);
  task.train(false);
  const TaskOutput out = task.step(mp_batch());
  // Raw band gaps are O(1); normalized loss should be tiny relative to
  // a std=1 setting while MAE stays O(1).
  EXPECT_LT(out.metrics.at("loss"), 10.0);
  EXPECT_GT(out.metrics.at("mae"), 0.01);
}

TEST(RegressionTask, PredictDenormalizes) {
  RngEngine rng(3);
  data::TargetStats stats{5.0f, 2.0f};
  ScalarRegressionTask task(tiny_encoder(3), "band_gap", tiny_head(), rng,
                            stats);
  task.train(false);
  const core::Tensor pred = task.predict(mp_batch());
  EXPECT_EQ(pred.size(0), 8);
  // Fresh model outputs are small in normalized units; denormalized
  // predictions should cluster near the mean.
  for (std::int64_t i = 0; i < pred.size(0); ++i) {
    EXPECT_GT(pred.at(i, 0), -20.0f);
    EXPECT_LT(pred.at(i, 0), 30.0f);
  }
}

TEST(RegressionTask, MissingTargetThrows) {
  RngEngine rng(4);
  ScalarRegressionTask task(tiny_encoder(4), "not_a_target", tiny_head(), rng);
  EXPECT_THROW(task.step(mp_batch()), matsci::Error);
}

TEST(RegressionTask, LossVariants) {
  for (const auto loss :
       {RegressionLoss::kMSE, RegressionLoss::kL1, RegressionLoss::kHuber}) {
    RngEngine rng(5);
    ScalarRegressionTask task(tiny_encoder(5), "band_gap", tiny_head(), rng,
                              {}, loss);
    EXPECT_TRUE(std::isfinite(task.step(mp_batch()).loss.item()));
  }
}

data::Batch sym_batch(std::int64_t n = 8) {
  sym::SyntheticPointGroupDataset ds(n, 17);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < n; ++i) samples.push_back(ds.get(i));
  data::CollateOptions opts;
  opts.representation = data::Representation::kPointCloud;
  return data::collate(samples, opts);
}

TEST(ClassificationTask, MulticlassStep) {
  RngEngine rng(6);
  ClassificationTask task(tiny_encoder(6), "point_group", 32, tiny_head(),
                          rng);
  const TaskOutput out = task.step(sym_batch());
  EXPECT_TRUE(std::isfinite(out.loss.item()));
  // Untrained logits are unnormalized (sum pooling), so CE is merely
  // finite and positive, not near log(32).
  EXPECT_GT(out.metrics.at("ce"), 0.0);
  EXPECT_GE(out.metrics.at("accuracy"), 0.0);
  EXPECT_LE(out.metrics.at("accuracy"), 1.0);
  const auto pred = task.predict(sym_batch());
  EXPECT_EQ(pred.size(), 8u);
  for (const std::int64_t p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 32);
  }
}

TEST(ClassificationTask, BinaryStabilityUsesBce) {
  RngEngine rng(7);
  ClassificationTask task(tiny_encoder(7), "stability", 2, tiny_head(), rng,
                          /*binary=*/true);
  const TaskOutput out = task.step(mp_batch());
  EXPECT_TRUE(out.metrics.count("bce"));
  EXPECT_TRUE(std::isfinite(out.metrics.at("bce")));
  const auto pred = task.predict(mp_batch());
  for (const std::int64_t p : pred) {
    EXPECT_TRUE(p == 0 || p == 1);
  }
}

TEST(ClassificationTask, Validation) {
  RngEngine rng(8);
  EXPECT_THROW(
      ClassificationTask(tiny_encoder(8), "x", 1, tiny_head(), rng),
      matsci::Error);
  EXPECT_THROW(ClassificationTask(tiny_encoder(8), "x", 3, tiny_head(), rng,
                                  /*binary=*/true),
               matsci::Error);
  EXPECT_THROW(
      ClassificationTask(nullptr, "x", 2, tiny_head(), rng),
      matsci::Error);
}

TEST(MultiTask, RoutesByDatasetId) {
  auto encoder = tiny_encoder(9);
  MultiTaskModule mt(encoder, tiny_head(), 99);
  mt.add_regression(/*dataset_id=*/0, "band_gap", {1.4f, 1.1f}, "mp/band_gap");
  mt.add_regression(0, "formation_energy", {0.2f, 1.0f}, "mp/eform");
  mt.add_binary_classification(0, "stability", "mp/stability");
  mt.add_regression(/*dataset_id=*/1, "formation_energy", {0.3f, 1.1f},
                    "cmd/eform");
  EXPECT_EQ(mt.num_heads(), 4);

  const TaskOutput mp_out = mt.step(mp_batch(8, /*dataset_id=*/0));
  EXPECT_TRUE(mp_out.metrics.count("mp/band_gap/mae"));
  EXPECT_TRUE(mp_out.metrics.count("mp/eform/mae"));
  EXPECT_TRUE(mp_out.metrics.count("mp/stability/bce"));
  EXPECT_FALSE(mp_out.metrics.count("cmd/eform/mae"));

  // A Carolina batch routes to the CMD head only.
  materials::CarolinaMaterialsDataset cmd(8, 3);
  std::vector<data::StructureSample> samples;
  for (std::int64_t i = 0; i < 8; ++i) {
    auto s = cmd.get(i);
    s.dataset_id = 1;
    samples.push_back(std::move(s));
  }
  data::CollateOptions copts;
  copts.radius.cutoff = 4.0;
  const TaskOutput cmd_out = mt.step(data::collate(samples, copts));
  EXPECT_TRUE(cmd_out.metrics.count("cmd/eform/mae"));
  EXPECT_FALSE(cmd_out.metrics.count("mp/band_gap/mae"));
}

TEST(MultiTask, UnroutedDatasetThrows) {
  MultiTaskModule mt(tiny_encoder(10), tiny_head(), 1);
  mt.add_regression(0, "band_gap", {}, "mp/band_gap");
  EXPECT_THROW(mt.step(mp_batch(4, /*dataset_id=*/7)), matsci::Error);
}

TEST(MultiTask, SharedEncoderReceivesGradsFromAllHeads) {
  auto encoder = tiny_encoder(11);
  MultiTaskModule mt(encoder, tiny_head(), 2);
  mt.add_regression(0, "band_gap", {}, "a");
  mt.add_binary_classification(0, "stability", "b");
  const TaskOutput out = mt.step(mp_batch());
  out.loss.backward();
  bool encoder_grads = false;
  for (core::Tensor p : encoder->parameters()) {
    for (const float g : p.grad_span()) {
      if (g != 0.0f) encoder_grads = true;
    }
  }
  EXPECT_TRUE(encoder_grads);
}

TEST(MultiTask, DuplicateLabelRejected) {
  MultiTaskModule mt(tiny_encoder(12), tiny_head(), 3);
  mt.add_regression(0, "band_gap", {}, "same");
  EXPECT_THROW(mt.add_regression(0, "efermi", {}, "same"), matsci::Error);
}

TEST(MetricAccumulator, WeightedMeans) {
  MetricAccumulator acc;
  TaskOutput a;
  a.count = 2;
  a.metrics["mae"] = 1.0;
  TaskOutput b;
  b.count = 6;
  b.metrics["mae"] = 2.0;
  b.metrics["extra"] = 5.0;
  acc.add(a);
  acc.add(b);
  EXPECT_NEAR(acc.mean("mae"), (2.0 * 1.0 + 6.0 * 2.0) / 8.0, 1e-12);
  EXPECT_TRUE(acc.has("extra"));
  EXPECT_FALSE(acc.has("missing"));
  EXPECT_THROW(acc.mean("missing"), matsci::Error);
  acc.reset();
  EXPECT_FALSE(acc.has("mae"));
}

}  // namespace
}  // namespace matsci::tasks
