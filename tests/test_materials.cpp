#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/macros.hpp"
#include "materials/carolina.hpp"
#include "materials/elements.hpp"
#include "materials/lips.hpp"
#include "materials/materials_project.hpp"
#include "materials/ocp.hpp"
#include "materials/property_oracle.hpp"
#include "materials/structure.hpp"

namespace matsci::materials {
namespace {

TEST(Elements, TableLookups) {
  EXPECT_STREQ(element(1).symbol, "H");
  EXPECT_STREQ(element(26).symbol, "Fe");
  EXPECT_STREQ(element(79).symbol, "Au");
  EXPECT_NEAR(element(8).electronegativity, 3.44, 1e-6);
  EXPECT_NEAR(element(3).covalent_radius, 1.28, 1e-6);
  EXPECT_THROW(element(0), matsci::Error);
  EXPECT_THROW(element(87), matsci::Error);
}

TEST(Elements, SymbolRoundTrip) {
  for (const std::int64_t z : {1, 6, 8, 14, 26, 47, 79, 86}) {
    EXPECT_EQ(atomic_number(element(z).symbol), z);
  }
  EXPECT_THROW(atomic_number("Xx"), matsci::Error);
}

TEST(Structure, LatticeConstructorsAndVolume) {
  Structure s;
  s.lattice = cubic_lattice(4.0);
  EXPECT_NEAR(s.volume(), 64.0, 1e-9);
  s.lattice = orthorhombic_lattice(2.0, 3.0, 4.0);
  EXPECT_NEAR(s.volume(), 24.0, 1e-9);
  s.lattice = hexagonal_lattice(3.0, 5.0);
  EXPECT_NEAR(s.volume(), 3.0 * 3.0 * std::sqrt(3.0) / 2.0 * 5.0, 1e-9);
  // Cubic via triclinic with right angles.
  s.lattice = triclinic_lattice(4, 4, 4, M_PI / 2, M_PI / 2, M_PI / 2);
  EXPECT_NEAR(s.volume(), 64.0, 1e-6);
  EXPECT_THROW(cubic_lattice(-1.0), matsci::Error);
}

TEST(Structure, CartesianAndDistances) {
  Structure s;
  s.lattice = cubic_lattice(10.0);
  s.frac = {{0.05, 0.0, 0.0}, {0.95, 0.0, 0.0}};
  s.species = {11, 17};
  const auto cart = s.cartesian();
  EXPECT_NEAR(cart[0].x, 0.5, 1e-9);
  EXPECT_NEAR(cart[1].x, 9.5, 1e-9);
  // Minimal-image distance wraps around.
  EXPECT_NEAR(s.distance(0, 1), 1.0, 1e-9);
  EXPECT_NEAR(s.nearest_neighbor_distance(0), 1.0, 1e-9);
  EXPECT_NEAR(s.min_interatomic_distance(), 1.0, 1e-9);
}

TEST(Structure, SupercellMultiplies) {
  Structure s;
  s.lattice = cubic_lattice(3.0);
  s.frac = {{0.0, 0.0, 0.0}, {0.5, 0.5, 0.5}};
  s.species = {26, 26};
  Structure sc = s.supercell(2, 2, 1);
  EXPECT_EQ(sc.num_atoms(), 8);
  EXPECT_NEAR(sc.volume(), 4.0 * s.volume(), 1e-9);
  // Nearest-neighbor geometry is preserved.
  EXPECT_NEAR(sc.min_interatomic_distance(), s.min_interatomic_distance(),
              1e-9);
  EXPECT_THROW(s.supercell(0, 1, 1), matsci::Error);
}

TEST(Structure, WrapNormalizesFractionals) {
  Structure s;
  s.lattice = cubic_lattice(5.0);
  s.frac = {{1.25, -0.25, 3.0}};
  s.species = {6};
  s.wrap();
  EXPECT_NEAR(s.frac[0].x, 0.25, 1e-9);
  EXPECT_NEAR(s.frac[0].y, 0.75, 1e-9);
  EXPECT_NEAR(s.frac[0].z, 0.0, 1e-9);
}

TEST(Structure, ValidateCatchesMismatch) {
  Structure s;
  s.lattice = cubic_lattice(5.0);
  s.frac = {{0, 0, 0}};
  EXPECT_THROW(s.validate(), matsci::Error);  // species missing
}

class RandomCrystalTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCrystalTest, SatisfiesInvariants) {
  core::RngEngine rng(static_cast<std::uint64_t>(GetParam()));
  RandomCrystalOptions opts;
  opts.palette = {8, 14, 26};
  opts.systems = {LatticeSystem::kCubic, LatticeSystem::kTriclinic,
                  LatticeSystem::kHexagonal};
  Structure s = random_crystal(rng, opts);
  s.validate();
  EXPECT_GE(s.num_atoms(), 1);
  if (s.num_atoms() >= 2) {
    EXPECT_GE(s.min_interatomic_distance(), opts.min_distance);
  }
  for (const auto& f : s.frac) {
    EXPECT_GE(f.x, 0.0);
    EXPECT_LT(f.x, 1.0);
  }
  for (const std::int64_t z : s.species) {
    EXPECT_TRUE(z == 8 || z == 14 || z == 26);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCrystalTest,
                         ::testing::Range(1, 17));

TEST(PropertyOracle, LabelsDeterministic) {
  PropertyOracle oracle(42);
  core::RngEngine rng(5);
  RandomCrystalOptions opts;
  opts.palette = MaterialsProjectDataset::palette();
  opts.systems = {LatticeSystem::kCubic};
  Structure s = random_crystal(rng, opts);
  EXPECT_DOUBLE_EQ(oracle.band_gap(s), oracle.band_gap(s));
  EXPECT_DOUBLE_EQ(oracle.formation_energy(s), oracle.formation_energy(s));
  EXPECT_EQ(oracle.is_stable(s), oracle.is_stable(s));
}

TEST(PropertyOracle, LabelRangesPhysical) {
  PropertyOracle oracle(1);
  core::RngEngine rng(2);
  RandomCrystalOptions opts;
  opts.palette = MaterialsProjectDataset::palette();
  opts.systems = {LatticeSystem::kCubic, LatticeSystem::kOrthorhombic};
  for (int i = 0; i < 32; ++i) {
    Structure s = random_crystal(rng, opts);
    const double gap = oracle.band_gap(s);
    EXPECT_GE(gap, 0.0);
    EXPECT_LE(gap, 8.0);
    const double ef = oracle.formation_energy(s);
    EXPECT_GE(ef, -4.0);
    EXPECT_LE(ef, 2.0);
    EXPECT_TRUE(std::isfinite(oracle.fermi_energy(s)));
  }
}

TEST(PropertyOracle, FeaturesSaneOnKnownCrystal) {
  // Rock-salt NaCl: a = 5.64 Å, coordination 6, nn distance a/2.
  Structure s;
  s.lattice = cubic_lattice(5.64);
  s.frac = {{0, 0, 0},     {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5},
            {0.5, 0, 0},   {0, 0.5, 0},   {0, 0, 0.5},   {0.5, 0.5, 0.5}};
  s.species = {11, 11, 11, 11, 17, 17, 17, 17};
  const StructureFeatures f = compute_features(s);
  EXPECT_EQ(f.num_atoms, 8);
  EXPECT_NEAR(f.mean_nn_distance, 5.64 / 2.0, 1e-6);
  EXPECT_NEAR(f.mean_electronegativity, (0.93 + 3.16) / 2.0, 1e-6);
  EXPECT_NEAR(f.composition_entropy, std::log(2.0), 1e-9);
  EXPECT_GT(f.mean_coordination, 4.0);  // 6 neighbors within bond length
  EXPECT_NEAR(f.number_density, 8.0 / std::pow(5.64, 3), 1e-9);
}

TEST(PropertyOracle, AdsorptionEnergyBindsCloserAdsorbates) {
  PropertyOracle oracle(3, /*noise_scale=*/0.0);
  auto make = [](double height) {
    Structure s;
    s.lattice = orthorhombic_lattice(5.0, 5.0, 20.0);
    s.frac = {{0.25, 0.25, 0.1}, {0.75, 0.25, 0.1}, {0.25, 0.75, 0.1},
              {0.75, 0.75, 0.1}};
    s.species = {78, 78, 78, 78};
    s.frac.push_back({0.25, 0.25, (2.0 + height) / 20.0});
    s.species.push_back(8);
    return s;
  };
  const std::vector<std::int64_t> ads = {4};
  const double near = oracle.adsorption_energy(make(1.8), ads);
  const double far = oracle.adsorption_energy(make(6.0), ads);
  EXPECT_LT(near, far);   // closer = more strongly bound
  EXPECT_NEAR(far, 0.0, 0.1);  // out of range ≈ no interaction
  EXPECT_THROW(oracle.adsorption_energy(make(2.0), {}), matsci::Error);
}

struct DatasetCase {
  const char* name;
  std::function<std::unique_ptr<data::StructureDataset>()> make;
  std::vector<std::string> scalar_keys;
  std::vector<std::string> class_keys;
  bool periodic;
};

class DatasetContractTest : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(DatasetContractTest, FulfillsContract) {
  const DatasetCase& tc = GetParam();
  auto ds = tc.make();
  ASSERT_GE(ds->size(), 8);
  for (const std::int64_t i : {std::int64_t{0}, ds->size() / 2, ds->size() - 1}) {
    const data::StructureSample s = ds->get(i);
    EXPECT_GT(s.num_atoms(), 0);
    EXPECT_EQ(s.species.size(), s.positions.size());
    EXPECT_EQ(s.lattice.has_value(), tc.periodic);
    for (const std::string& k : tc.scalar_keys) {
      ASSERT_TRUE(s.scalar_targets.count(k)) << tc.name << " missing " << k;
      EXPECT_TRUE(std::isfinite(s.scalar_targets.at(k)));
    }
    for (const std::string& k : tc.class_keys) {
      ASSERT_TRUE(s.class_targets.count(k)) << tc.name << " missing " << k;
    }
    // Determinism.
    const data::StructureSample s2 = ds->get(i);
    ASSERT_EQ(s2.num_atoms(), s.num_atoms());
    for (std::int64_t a = 0; a < s.num_atoms(); ++a) {
      EXPECT_EQ(s2.species[static_cast<std::size_t>(a)],
                s.species[static_cast<std::size_t>(a)]);
      EXPECT_NEAR(core::norm(s2.positions[static_cast<std::size_t>(a)] -
                             s.positions[static_cast<std::size_t>(a)]),
                  0.0, 1e-12);
    }
  }
  EXPECT_THROW(ds->get(ds->size()), matsci::Error);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, DatasetContractTest,
    ::testing::Values(
        DatasetCase{"MaterialsProject",
                    [] {
                      return std::make_unique<MaterialsProjectDataset>(32, 1);
                    },
                    {"band_gap", "efermi", "formation_energy"},
                    {"stability"},
                    true},
        DatasetCase{"Carolina",
                    [] {
                      return std::make_unique<CarolinaMaterialsDataset>(32, 2);
                    },
                    {"formation_energy"},
                    {},
                    true},
        DatasetCase{"LiPS",
                    [] { return std::make_unique<LiPSDataset>(16, 3); },
                    {"energy"},
                    {},
                    true},
        DatasetCase{"OC20",
                    [] {
                      return std::make_unique<OCPDataset>(16, 4,
                                                          OCPFlavor::kOC20);
                    },
                    {"adsorption_energy"},
                    {},
                    true},
        DatasetCase{"OC22",
                    [] {
                      return std::make_unique<OCPDataset>(16, 5,
                                                          OCPFlavor::kOC22);
                    },
                    {"adsorption_energy"},
                    {},
                    true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(MaterialsProject, BroadDiversity) {
  MaterialsProjectDataset ds(64, 11);
  std::set<std::int64_t> species_seen;
  std::set<std::int64_t> stability_seen;
  for (std::int64_t i = 0; i < 64; ++i) {
    const auto s = ds.get(i);
    species_seen.insert(s.species.begin(), s.species.end());
    stability_seen.insert(s.class_targets.at("stability"));
  }
  EXPECT_GT(species_seen.size(), 15u);   // wide palette exercised
  EXPECT_EQ(stability_seen.size(), 2u);  // both classes occur
}

TEST(Carolina, CubicCellsOnly) {
  CarolinaMaterialsDataset ds(16, 7);
  for (std::int64_t i = 0; i < 16; ++i) {
    const Structure s = ds.structure_at(i);
    const double a = core::norm(s.lattice[0]);
    EXPECT_NEAR(core::norm(s.lattice[1]), a, 1e-9);
    EXPECT_NEAR(core::norm(s.lattice[2]), a, 1e-9);
    EXPECT_NEAR(core::dot(s.lattice[0], s.lattice[1]), 0.0, 1e-9);
  }
}

TEST(LiPS, FixedCompositionTrajectory) {
  LiPSDataset ds(12, 9);
  const auto first = ds.get(0);
  std::multiset<std::int64_t> comp(first.species.begin(),
                                   first.species.end());
  for (std::int64_t i = 1; i < 12; ++i) {
    const auto s = ds.get(i);
    // Same atoms, different positions (it is a trajectory).
    EXPECT_EQ(std::multiset<std::int64_t>(s.species.begin(),
                                          s.species.end()),
              comp);
  }
  // Positions actually move between frames.
  const auto later = ds.get(11);
  double moved = 0.0;
  for (std::size_t a = 0; a < first.positions.size(); ++a) {
    moved += core::norm(later.positions[a] - first.positions[a]);
  }
  EXPECT_GT(moved, 1e-3);
  // Only Li / P / S.
  for (const std::int64_t z : first.species) {
    EXPECT_TRUE(z == 3 || z == 15 || z == 16);
  }
}

TEST(OCP, SlabPlusAdsorbateStructure) {
  OCPDataset ds(8, 13, OCPFlavor::kOC20);
  std::vector<std::int64_t> ads;
  const Structure s = ds.structure_at(0, ads);
  EXPECT_GE(s.num_atoms(), 13);  // 12 slab atoms + adsorbate
  EXPECT_FALSE(ads.empty());
  // Adsorbate sits above the top slab layer.
  const auto cart = s.cartesian();
  double top_slab = 0.0;
  for (std::int64_t i = 0; i < s.num_atoms(); ++i) {
    if (std::find(ads.begin(), ads.end(), i) != ads.end()) continue;
    top_slab = std::max(top_slab, cart[static_cast<std::size_t>(i)].z);
  }
  for (const std::int64_t a : ads) {
    EXPECT_GT(cart[static_cast<std::size_t>(a)].z, top_slab);
  }
}

TEST(OCP, OC22ContainsOxygenInSlab) {
  OCPDataset ds(24, 15, OCPFlavor::kOC22);
  bool oxide_surface = false;
  for (std::int64_t i = 0; i < 24; ++i) {
    std::vector<std::int64_t> ads;
    const Structure s = ds.structure_at(i, ads);
    for (std::int64_t a = 0; a < s.num_atoms(); ++a) {
      const bool is_ads = std::find(ads.begin(), ads.end(), a) != ads.end();
      if (!is_ads && s.species[static_cast<std::size_t>(a)] == 8) {
        oxide_surface = true;
      }
    }
  }
  EXPECT_TRUE(oxide_surface);
}

}  // namespace
}  // namespace matsci::materials
