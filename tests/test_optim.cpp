#include <gtest/gtest.h>

#include <cmath>

#include "core/macros.hpp"
#include "core/ops.hpp"
#include "optim/adam.hpp"
#include "optim/diagnostics.hpp"
#include "optim/lr_scheduler.hpp"
#include "optim/sgd.hpp"

namespace matsci::optim {
namespace {

using core::Tensor;

/// Minimize f(x) = ||x - target||² and return the final distance.
template <typename MakeOpt>
double run_quadratic(MakeOpt make_opt, int steps) {
  Tensor x = Tensor::from_vector({5.0f, -3.0f, 8.0f}, {3});
  x.set_requires_grad(true);
  Tensor target = Tensor::from_vector({1.0f, 2.0f, -1.0f}, {3});
  auto opt = make_opt(std::vector<Tensor>{x});
  for (int i = 0; i < steps; ++i) {
    opt.zero_grad();
    core::sum(core::square(core::sub(x, target))).backward();
    opt.step();
  }
  double dist = 0.0;
  for (std::int64_t i = 0; i < 3; ++i) {
    dist += std::pow(x.at(i) - target.at(i), 2);
  }
  return std::sqrt(dist);
}

TEST(SGD, ConvergesOnQuadratic) {
  const double d = run_quadratic(
      [](std::vector<Tensor> p) {
        return SGD(std::move(p), {.lr = 0.1});
      },
      200);
  EXPECT_LT(d, 1e-3);
}

TEST(SGD, MomentumAccelerates) {
  const double plain = run_quadratic(
      [](std::vector<Tensor> p) { return SGD(std::move(p), {.lr = 0.02}); },
      40);
  const double momentum = run_quadratic(
      [](std::vector<Tensor> p) {
        return SGD(std::move(p), {.lr = 0.02, .momentum = 0.9});
      },
      40);
  EXPECT_LT(momentum, plain);
}

TEST(SGD, WeightDecayShrinksWeights) {
  Tensor x = Tensor::from_vector({10.0f}, {1});
  x.set_requires_grad(true);
  SGD opt({x}, {.lr = 0.1, .weight_decay = 1.0});
  for (int i = 0; i < 50; ++i) {
    opt.zero_grad();
    // Zero task gradient: decay alone should shrink x.
    core::mul_scalar(core::sum(x), 0.0f).backward();
    opt.step();
  }
  EXPECT_LT(std::fabs(x.at(0)), 1.0f);
}

TEST(SGD, OptionValidation) {
  Tensor x = Tensor::ones({1}).set_requires_grad(true);
  EXPECT_THROW(SGD({x}, {.lr = 0.1, .momentum = 1.5}), matsci::Error);
  EXPECT_THROW(SGD({x}, {.lr = 0.1, .nesterov = true}), matsci::Error);
  EXPECT_THROW(SGD({x}, {.lr = -0.1}), matsci::Error);
  EXPECT_THROW(SGD({}, {.lr = 0.1}), matsci::Error);
}

TEST(Adam, ConvergesOnQuadratic) {
  const double d = run_quadratic(
      [](std::vector<Tensor> p) {
        return Adam(std::move(p), {.lr = 0.3});
      },
      300);
  EXPECT_LT(d, 1e-2);
}

TEST(Adam, BiasCorrectionMakesFirstStepLrSized) {
  // After one step with gradient g, Adam moves by ~lr regardless of |g|.
  for (const float g0 : {0.01f, 100.0f}) {
    Tensor x = Tensor::from_vector({0.0f}, {1});
    x.set_requires_grad(true);
    Adam opt({x}, {.lr = 0.1});
    opt.zero_grad();
    core::mul_scalar(core::sum(x), g0).backward();
    opt.step();
    EXPECT_NEAR(std::fabs(x.at(0)), 0.1, 1e-3) << "g0=" << g0;
  }
}

TEST(Adam, DecoupledVsCoupledWeightDecayDiffer) {
  auto run = [](bool decoupled) {
    Tensor x = Tensor::from_vector({2.0f}, {1});
    x.set_requires_grad(true);
    Adam opt({x}, {.lr = 0.05,
                   .weight_decay = 0.5,
                   .decoupled_weight_decay = decoupled});
    for (int i = 0; i < 20; ++i) {
      opt.zero_grad();
      core::sum(core::square(x)).backward();
      opt.step();
    }
    return x.at(0);
  };
  EXPECT_NE(run(true), run(false));
}

TEST(Adam, MakeAdamwFactory) {
  Tensor x = Tensor::ones({2}).set_requires_grad(true);
  Adam opt = make_adamw({x}, 1e-3, 0.01);
  EXPECT_TRUE(opt.options().decoupled_weight_decay);
  EXPECT_DOUBLE_EQ(opt.options().weight_decay, 0.01);
  EXPECT_DOUBLE_EQ(opt.options().beta1, 0.9);
  EXPECT_DOUBLE_EQ(opt.options().beta2, 0.999);
}

TEST(Optimizer, GradNormAndClip) {
  Tensor x = Tensor::zeros({2}).set_requires_grad(true);
  SGD opt({x}, {.lr = 0.1});
  opt.zero_grad();
  // grad = (3, 4) -> norm 5.
  Tensor w = core::Tensor::from_vector({3.0f, 4.0f}, {2});
  core::sum(core::mul(x, w)).backward();
  EXPECT_NEAR(opt.grad_norm(), 5.0, 1e-6);
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(opt.grad_norm(), 1.0, 1e-5);
  // Clipping below threshold is a no-op.
  const double pre2 = opt.clip_grad_norm(10.0);
  EXPECT_NEAR(pre2, 1.0, 1e-5);
  EXPECT_NEAR(opt.grad_norm(), 1.0, 1e-5);
}

TEST(Optimizer, ClipReturnsPreClipNormAcrossMultipleTensors) {
  Tensor a = Tensor::zeros({2}).set_requires_grad(true);
  Tensor b = Tensor::zeros({1}).set_requires_grad(true);
  SGD opt({a, b}, {.lr = 0.1});
  opt.zero_grad();
  // grads: a = (2, 3), b = (6) -> global norm 7.
  core::sum(core::mul(a, Tensor::from_vector({2.0f, 3.0f}, {2}))).backward();
  core::sum(core::mul(b, Tensor::from_vector({6.0f}, {1}))).backward();
  EXPECT_NEAR(opt.grad_norm(), 7.0, 1e-5);
  const double pre = opt.clip_grad_norm(3.5);
  EXPECT_NEAR(pre, 7.0, 1e-5);
  EXPECT_NEAR(opt.grad_norm(), 3.5, 1e-4);
  // Uniform rescale: every component halved.
  EXPECT_NEAR(a.grad_span()[0], 1.0f, 1e-5);
  EXPECT_NEAR(b.grad_span()[0], 3.0f, 1e-5);
}

TEST(AdamInstabilityProbe, ObserveBeforeClipRecordsTrueNorm) {
  Tensor x = Tensor::zeros({2}).set_requires_grad(true);
  Adam opt({x}, {.lr = 0.01});
  AdamInstabilityProbe probe(opt);
  opt.zero_grad();
  // grad = (3, 4) -> true norm 5, clipped down to 1.
  core::sum(core::mul(x, Tensor::from_vector({3.0f, 4.0f}, {2}))).backward();
  const AdamStepStats stats = probe.observe();  // the documented order
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-5);
  EXPECT_NEAR(stats.grad_norm, 5.0, 1e-5);  // probe saw the pre-clip norm
  ASSERT_NE(probe.last(), nullptr);
  EXPECT_NEAR(probe.last()->grad_norm, 5.0, 1e-5);
  // An observe() after clipping sees the rescaled gradients instead —
  // the history keeps the honest record only if the order is respected.
  const AdamStepStats late = probe.observe();
  EXPECT_NEAR(late.grad_norm, 1.0, 1e-4);
}

TEST(AdamInstabilityProbe, HistoryLimitDiscardsOldest) {
  Tensor x = Tensor::zeros({2}).set_requires_grad(true);
  Adam opt({x}, {.lr = 0.01});
  AdamInstabilityProbe probe(opt);
  probe.set_history_limit(3);
  for (int i = 0; i < 5; ++i) {
    opt.zero_grad();
    core::sum(core::mul(x, Tensor::from_vector({1.0f, 1.0f}, {2})))
        .backward();
    probe.observe();
    opt.step();
  }
  ASSERT_EQ(probe.history().size(), 3u);
  EXPECT_EQ(probe.history().front().step, 3);  // steps 1-2 trimmed
  EXPECT_EQ(probe.history().back().step, 5);
  ASSERT_NE(probe.last(), nullptr);
  EXPECT_EQ(probe.last()->step, 5);
}

TEST(Schedulers, LinearWarmupRamp) {
  Tensor x = Tensor::ones({1}).set_requires_grad(true);
  SGD opt({x}, {.lr = 1.0});
  LinearWarmup warmup(opt, /*peak_lr=*/1.0, /*warmup_epochs=*/4);
  EXPECT_NEAR(opt.lr(), 0.25, 1e-9);  // epoch 0 applies first ramp value
  warmup.epoch_step();
  EXPECT_NEAR(opt.lr(), 0.5, 1e-9);
  warmup.epoch_step();
  warmup.epoch_step();
  EXPECT_NEAR(opt.lr(), 1.0, 1e-9);
  warmup.epoch_step();
  EXPECT_NEAR(opt.lr(), 1.0, 1e-9);  // constant after warmup
}

TEST(Schedulers, ExponentialDecayGamma) {
  Tensor x = Tensor::ones({1}).set_requires_grad(true);
  SGD opt({x}, {.lr = 1.0});
  ExponentialDecay decay(opt, 1.0, 0.8);
  EXPECT_NEAR(opt.lr(), 1.0, 1e-9);
  decay.epoch_step();
  EXPECT_NEAR(opt.lr(), 0.8, 1e-9);
  decay.epoch_step();
  EXPECT_NEAR(opt.lr(), 0.64, 1e-9);
}

TEST(Schedulers, WarmupExponentialMatchesPaperSchedule) {
  // §4.2: warmup ramps linearly to nominal, then exponential decay γ=0.8.
  Tensor x = Tensor::ones({1}).set_requires_grad(true);
  SGD opt({x}, {.lr = 1.0});
  WarmupExponential sched(opt, /*peak=*/2.0, /*warmup=*/8, /*gamma=*/0.8);
  std::vector<double> lrs = {opt.lr()};
  for (int e = 0; e < 12; ++e) {
    sched.epoch_step();
    lrs.push_back(opt.lr());
  }
  // Monotone increasing through warmup.
  for (int e = 1; e < 8; ++e) EXPECT_GT(lrs[e], lrs[e - 1]);
  EXPECT_NEAR(lrs[7], 2.0, 1e-9);  // reaches peak at the end of warmup
  // Decay afterwards at γ = 0.8 per epoch.
  EXPECT_NEAR(lrs[8] / lrs[7], 0.8, 1e-9);
  EXPECT_NEAR(lrs[9] / lrs[8], 0.8, 1e-9);
}

TEST(Schedulers, GoyalLinearScalingRule) {
  EXPECT_DOUBLE_EQ(scale_lr_for_world_size(1e-5, 512), 512e-5);
  EXPECT_DOUBLE_EQ(scale_lr_for_world_size(1e-3, 1), 1e-3);
  EXPECT_THROW(scale_lr_for_world_size(1e-3, 0), matsci::Error);
}

TEST(Diagnostics, ProbeTracksGradNormAndCorrelation) {
  Tensor x = Tensor::zeros({4}).set_requires_grad(true);
  Adam opt({x}, {.lr = 0.01});
  AdamInstabilityProbe probe(opt);

  // Two steps with identical gradients: autocorrelation -> 1.
  for (int i = 0; i < 2; ++i) {
    opt.zero_grad();
    Tensor w = Tensor::from_vector({1, 1, 1, 1}, {4});
    core::sum(core::mul(x, w)).backward();
    probe.observe();
    opt.step();
  }
  ASSERT_EQ(probe.history().size(), 2u);
  EXPECT_NEAR(probe.history()[0].grad_norm, 2.0, 1e-5);
  EXPECT_NEAR(probe.history()[1].grad_autocorrelation, 1.0, 1e-5);

  // Opposite gradient: correlation flips negative.
  opt.zero_grad();
  Tensor w = Tensor::from_vector({-1, -1, -1, -1}, {4});
  core::sum(core::mul(x, w)).backward();
  const auto stats = probe.observe();
  EXPECT_NEAR(stats.grad_autocorrelation, -1.0, 1e-5);
}

TEST(Diagnostics, EpsFloorDetectedForVanishingGradients) {
  Tensor x = Tensor::zeros({4}).set_requires_grad(true);
  Adam opt({x}, {.lr = 0.01, .eps = 1e-2});  // large eps to hit the floor
  AdamInstabilityProbe probe(opt);
  for (int i = 0; i < 3; ++i) {
    opt.zero_grad();
    // Tiny gradients: sqrt(v) stays below eps.
    Tensor w = Tensor::from_vector({1e-5f, 1e-5f, 1e-5f, 1e-5f}, {4});
    core::sum(core::mul(x, w)).backward();
    opt.step();
  }
  opt.zero_grad();
  Tensor w = Tensor::from_vector({1e-5f, 1e-5f, 1e-5f, 1e-5f}, {4});
  core::sum(core::mul(x, w)).backward();
  const auto stats = probe.observe();
  EXPECT_GT(stats.frac_at_eps_floor, 0.99);
}

}  // namespace
}  // namespace matsci::optim
