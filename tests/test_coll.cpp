// Tests for the bucketed/compressed/elastic DDP subsystem (comm/coll +
// the elastic recovery path in train/ddp). Runs in its own binary with
// the ctest label `ddp` so scripts/ci_matrix.sh can put exactly this
// suite under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "comm/coll/bucket_allreduce.hpp"
#include "comm/coll/bucketer.hpp"
#include "comm/coll/compressor.hpp"
#include "comm/coll/group_state.hpp"
#include "comm/communicator.hpp"
#include "comm/perf_model.hpp"
#include "core/autograd.hpp"
#include "core/macros.hpp"
#include "core/ops.hpp"
#include "core/random.hpp"
#include "core/tensor.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "obs/health.hpp"
#include "optim/sgd.hpp"
#include "tasks/regression.hpp"
#include "train/ddp.hpp"

namespace matsci {
namespace {

using core::RngEngine;
using core::Tensor;

// ---------------------------------------------------------------------------
// GradBucketer
// ---------------------------------------------------------------------------

TEST(GradBucketer, ReverseRegistrationOrderWithByteCap) {
  std::vector<Tensor> params = {Tensor::zeros({4}), Tensor::zeros({4}),
                                Tensor::zeros({4})};
  // 32-byte cap = 8 floats per bucket: the last two registered params
  // share bucket 0, the first registered lands alone in bucket 1.
  comm::coll::GradBucketer b(params, /*bucket_bytes=*/32);
  ASSERT_EQ(b.num_buckets(), 2u);
  EXPECT_EQ(b.bucket(0).param_indices, (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(b.bucket(1).param_indices, (std::vector<std::size_t>{0}));
  EXPECT_EQ(b.total_numel(), 12);
  EXPECT_EQ(b.bucket_of(params[2].impl().get()), 0);
  EXPECT_EQ(b.bucket_of(params[0].impl().get()), 1);
}

TEST(GradBucketer, OversizedParamGetsItsOwnBucket) {
  std::vector<Tensor> params = {Tensor::zeros({2}), Tensor::zeros({100})};
  comm::coll::GradBucketer b(params, /*bucket_bytes=*/16);  // 4-float cap
  ASSERT_EQ(b.num_buckets(), 2u);
  EXPECT_EQ(b.bucket(0).numel, 100);  // reverse order: big param first
  EXPECT_EQ(b.bucket(1).numel, 2);
}

TEST(GradBucketer, ZeroSizeParamsAreCarried) {
  std::vector<Tensor> params = {Tensor::zeros({0}), Tensor::zeros({3})};
  comm::coll::GradBucketer b(params, /*bucket_bytes=*/1024);
  ASSERT_EQ(b.num_buckets(), 1u);
  EXPECT_EQ(b.total_numel(), 3);
  EXPECT_EQ(b.bucket_of(params[0].impl().get()), 0);
  // Round-trip must cover the zero-size param without touching payload.
  for (float& g : params[1].grad_span()) g = 2.5f;
  const std::span<float> flat = b.flatten(0);
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_FLOAT_EQ(flat[0], 2.5f);
  b.unflatten(0);
  EXPECT_FLOAT_EQ(params[1].grad_span()[0], 2.5f);
}

TEST(GradBucketer, FlattenUnflattenRoundTripAndUnknownPayload) {
  std::vector<Tensor> params = {Tensor::zeros({2, 2}), Tensor::zeros({3})};
  comm::coll::GradBucketer b(params, /*bucket_bytes=*/1 << 20);
  ASSERT_EQ(b.num_buckets(), 1u);
  float v = 0.0f;
  for (Tensor p : params) {
    for (float& g : p.grad_span()) g = v += 1.0f;
  }
  std::span<float> flat = b.flatten(0);
  // Reverse order: params[1]'s 3 grads (5, 6, 7) come first.
  EXPECT_FLOAT_EQ(flat[0], 5.0f);
  EXPECT_FLOAT_EQ(flat[3], 1.0f);
  for (float& f : flat) f *= 2.0f;
  b.unflatten(0);
  EXPECT_FLOAT_EQ(params[0].grad_span()[0], 2.0f);
  EXPECT_FLOAT_EQ(params[1].grad_span()[2], 14.0f);

  Tensor stranger = Tensor::zeros({5});
  EXPECT_EQ(b.bucket_of(stranger.impl().get()), -1);
}

TEST(GradBucketer, DuplicateParamThrows) {
  Tensor p = Tensor::zeros({4});
  EXPECT_THROW(comm::coll::GradBucketer({p, p}, 1 << 20), matsci::Error);
}

// ---------------------------------------------------------------------------
// train::flatten_grads / unflatten_grads edge cases
// ---------------------------------------------------------------------------

TEST(FlattenGrads, EmptyParamListYieldsEmptyBuffer) {
  std::vector<Tensor> params;
  const std::vector<float> flat = train::flatten_grads(params);
  EXPECT_TRUE(flat.empty());
  std::vector<Tensor> params2;
  EXPECT_NO_THROW(train::unflatten_grads(flat, params2));
}

TEST(FlattenGrads, UnmaterializedGradsFlattenAsZeros) {
  // No backward has run: grad_span() materializes zeros on demand, so
  // the flat buffer is well-defined (all zeros of the right size).
  std::vector<Tensor> params = {Tensor::zeros({3}), Tensor::zeros({2, 2})};
  const std::vector<float> flat = train::flatten_grads(params);
  ASSERT_EQ(flat.size(), 7u);
  for (const float f : flat) EXPECT_EQ(f, 0.0f);
}

TEST(FlattenGrads, ZeroSizeParamRoundTrip) {
  std::vector<Tensor> params = {Tensor::zeros({0}), Tensor::zeros({2})};
  for (float& g : params[1].grad_span()) g = 3.0f;
  std::vector<float> flat = train::flatten_grads(params);
  ASSERT_EQ(flat.size(), 2u);
  flat[0] = 9.0f;
  train::unflatten_grads(flat, params);
  EXPECT_FLOAT_EQ(params[1].grad_span()[0], 9.0f);
}

// ---------------------------------------------------------------------------
// Compressors
// ---------------------------------------------------------------------------

TEST(Compressor, IdentityIsLossless) {
  comm::coll::CollOptions opts;
  opts.compressor = comm::coll::CompressorKind::kIdentity;
  auto c = comm::coll::make_compressor(opts);
  EXPECT_TRUE(c->lossless());
  std::vector<float> data = {1.0f, -2.0f, 3.5f};
  const std::vector<float> before = data;
  EXPECT_EQ(c->roundtrip(data), 12);
  EXPECT_EQ(data, before);
}

TEST(Compressor, Int8QuantizationErrorIsBoundedByHalfScale) {
  comm::coll::CollOptions opts;
  opts.compressor = comm::coll::CompressorKind::kInt8;
  auto c = comm::coll::make_compressor(opts);
  EXPECT_FALSE(c->lossless());

  RngEngine rng(3);
  std::vector<float> data(257);
  float amax = 0.0f;
  for (float& v : data) {
    v = static_cast<float>(rng.uniform(-4.0, 4.0));
    amax = std::max(amax, std::fabs(v));
  }
  const std::vector<float> before = data;
  const std::int64_t wire =
      c->roundtrip(std::span<float>(data.data(), data.size()));
  EXPECT_EQ(wire, static_cast<std::int64_t>(data.size()) + 4);
  const float scale = amax / 127.0f;
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(std::fabs(data[i] - before[i]), 0.5f * scale + 1e-6f)
        << "element " << i;
  }
}

TEST(Compressor, Int8AllZeroInputStaysZero) {
  comm::coll::CollOptions opts;
  opts.compressor = comm::coll::CompressorKind::kInt8;
  auto c = comm::coll::make_compressor(opts);
  std::vector<float> data(16, 0.0f);
  c->roundtrip(data);
  for (const float v : data) EXPECT_EQ(v, 0.0f);
}

TEST(Compressor, TopKKeepsLargestMagnitudesAndZeroesTheRest) {
  comm::coll::CollOptions opts;
  opts.compressor = comm::coll::CompressorKind::kTopK;
  opts.topk_fraction = 0.4;  // k = ceil(5 * 0.4) = 2
  auto c = comm::coll::make_compressor(opts);
  std::vector<float> data = {5.0f, -1.0f, 0.5f, -6.0f, 2.0f};
  const std::int64_t wire = c->roundtrip(data);
  EXPECT_EQ(wire, 2 * 8);  // k (index, value) pairs
  EXPECT_FLOAT_EQ(data[0], 5.0f);
  EXPECT_FLOAT_EQ(data[3], -6.0f);
  EXPECT_EQ(data[1], 0.0f);
  EXPECT_EQ(data[2], 0.0f);
  EXPECT_EQ(data[4], 0.0f);
}

TEST(Compressor, TopKFractionValidation) {
  comm::coll::CollOptions opts;
  opts.compressor = comm::coll::CompressorKind::kTopK;
  opts.topk_fraction = 0.0;
  EXPECT_THROW(comm::coll::make_compressor(opts), matsci::Error);
  opts.topk_fraction = 1.5;
  EXPECT_THROW(comm::coll::make_compressor(opts), matsci::Error);
}

// ---------------------------------------------------------------------------
// Non-blocking collectives (GroupState through the Communicator API)
// ---------------------------------------------------------------------------

TEST(NbAllreduce, OutOfOrderSlotWaits) {
  comm::run_ranks(2, [](comm::Communicator& comm) {
    const float r = static_cast<float>(comm.rank());
    std::vector<float> a = {r, r + 1.0f};          // slot 0
    std::vector<float> b = {10.0f * (r + 1.0f)};   // slot 1
    comm.allreduce_mean_nb(0, a);
    comm.allreduce_mean_nb(1, b);
    // Wait in the opposite order from posting: slots match by id.
    const comm::coll::WaitInfo w1 = comm.wait_allreduce(1);
    const comm::coll::WaitInfo w0 = comm.wait_allreduce(0);
    EXPECT_GE(w1.reduce_us, 0.0);
    EXPECT_GE(w0.reduce_us, 0.0);
    EXPECT_FLOAT_EQ(b[0], 15.0f);  // mean(10, 20)
    EXPECT_FLOAT_EQ(a[0], 0.5f);   // mean(0, 1)
    EXPECT_FLOAT_EQ(a[1], 1.5f);   // mean(1, 2)
  });
}

TEST(NbAllreduce, SlotsReusableAcrossSteps) {
  comm::run_ranks(3, [](comm::Communicator& comm) {
    for (int step = 0; step < 5; ++step) {
      std::vector<float> v = {static_cast<float>(comm.rank() + step)};
      comm.allreduce_mean_nb(0, v);
      comm.wait_allreduce(0);
      EXPECT_NEAR(v[0], 1.0f + static_cast<float>(step), 1e-6f);
    }
  });
}

// ---------------------------------------------------------------------------
// Communicator contract: size mismatches must throw, not deadlock
// ---------------------------------------------------------------------------

TEST(CommunicatorContract, MismatchedBlockingSizesThrowOnEveryRank) {
  std::atomic<int> threw{0};
  EXPECT_THROW(
      comm::run_ranks(2,
                      [&threw](comm::Communicator& comm) {
                        std::vector<float> data(
                            comm.rank() == 0 ? 3u : 4u, 1.0f);
                        try {
                          comm.allreduce_sum(data);
                        } catch (const matsci::Error&) {
                          ++threw;
                          throw;
                        }
                      }),
      matsci::Error);
  EXPECT_EQ(threw.load(), 2);
}

TEST(CommunicatorContract, MismatchedNbSizesPoisonTheSlotOnEveryRank) {
  std::atomic<int> threw{0};
  EXPECT_THROW(
      comm::run_ranks(2,
                      [&threw](comm::Communicator& comm) {
                        std::vector<float> data(
                            comm.rank() == 0 ? 2u : 5u, 1.0f);
                        try {
                          comm.allreduce_mean_nb(0, data);
                          comm.wait_allreduce(0);
                        } catch (const matsci::Error&) {
                          ++threw;
                          throw;
                        }
                      }),
      matsci::Error);
  EXPECT_EQ(threw.load(), 2);
}

// ---------------------------------------------------------------------------
// Autograd readiness hook
// ---------------------------------------------------------------------------

TEST(GradReadyHook, FiresExactlyOncePerReachedLeaf) {
  Tensor a = Tensor::from_vector({1.0f, 2.0f}, {2});
  Tensor b = Tensor::from_vector({3.0f, 4.0f}, {2});
  a.impl()->requires_grad = true;
  b.impl()->requires_grad = true;
  std::vector<const core::TensorImpl*> fired;
  {
    core::GradReadyHookGuard guard(
        [&fired](const std::shared_ptr<core::TensorImpl>& leaf) {
          fired.push_back(leaf.get());
        });
    core::sum(core::mul(a, b)).backward();
  }
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_NE(std::find(fired.begin(), fired.end(), a.impl().get()),
            fired.end());
  EXPECT_NE(std::find(fired.begin(), fired.end(), b.impl().get()),
            fired.end());
}

TEST(GradReadyHook, UnreachedLeavesGetNoCallback) {
  Tensor a = Tensor::from_vector({1.0f}, {1});
  Tensor lonely = Tensor::from_vector({2.0f}, {1});
  a.impl()->requires_grad = true;
  lonely.impl()->requires_grad = true;
  std::vector<const core::TensorImpl*> fired;
  {
    core::GradReadyHookGuard guard(
        [&fired](const std::shared_ptr<core::TensorImpl>& leaf) {
          fired.push_back(leaf.get());
        });
    core::sum(core::square(a)).backward();  // graph never touches `lonely`
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], a.impl().get());
}

// ---------------------------------------------------------------------------
// BucketAllreduce engine
// ---------------------------------------------------------------------------

TEST(BucketAllreduce, IdentityFlushAveragesAcrossRanks) {
  comm::run_ranks(2, [](comm::Communicator& comm) {
    std::vector<Tensor> params = {Tensor::zeros({3}), Tensor::zeros({2})};
    const float r = static_cast<float>(comm.rank());
    for (Tensor p : params) {
      for (float& g : p.grad_span()) g = r + 1.0f;  // rank0: 1, rank1: 2
    }
    comm::coll::CollOptions copts;
    comm::coll::BucketAllreduce engine(comm, params, copts);
    engine.begin_step();
    const comm::coll::StepStats stats = engine.finish_step();
    for (Tensor p : params) {
      for (const float g : p.grad_span()) EXPECT_FLOAT_EQ(g, 1.5f);
    }
    EXPECT_EQ(stats.bytes, 5 * 4);
    EXPECT_EQ(stats.compressed_bytes, 5 * 4);  // identity: wire == fp32
    // Every bucket was flushed after backward: nothing overlapped.
    EXPECT_EQ(stats.overlap_fraction, 0.0);
    EXPECT_EQ(engine.totals().steps, 1);
  });
}

TEST(BucketAllreduce, ErrorFeedbackRecoversSparsifiedComponents) {
  // Top-k with k=1 on a 4-element bucket: the small component is never
  // transmitted directly, but error feedback accumulates it in the
  // residual until it wins a slot (every ~4th step here). Over many
  // steps the applied updates must track the true gradient sum.
  comm::run_ranks(1, [](comm::Communicator& comm) {
    std::vector<Tensor> params = {Tensor::zeros({4})};
    comm::coll::CollOptions copts;
    copts.compressor = comm::coll::CompressorKind::kTopK;
    copts.topk_fraction = 0.25;  // k = 1 of 4
    comm::coll::BucketAllreduce engine(comm, params, copts);

    const int steps = 40;
    double applied_big = 0.0, applied_small = 0.0;
    for (int s = 0; s < steps; ++s) {
      std::span<float> g = params[0].grad_span();
      g[0] = 1.0f;
      g[1] = 0.3f;
      g[2] = 0.0f;
      g[3] = 0.0f;
      engine.begin_step();
      engine.finish_step();
      applied_big += g[0];
      applied_small += g[1];
    }
    // The big component ships every step; the small one in bursts whose
    // running total stays within one burst of the truth.
    EXPECT_NEAR(applied_big, steps * 1.0, 1.5);
    EXPECT_NEAR(applied_small, steps * 0.3, 1.5);
    EXPECT_LT(engine.totals().compressed_bytes, engine.totals().bytes);
  });
}

// ---------------------------------------------------------------------------
// DDP integration: bucketed training, compression, elastic recovery
// ---------------------------------------------------------------------------

std::unique_ptr<tasks::ScalarRegressionTask> make_task(std::uint64_t seed) {
  RngEngine rng(seed);
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 16;
  ecfg.pos_hidden = 8;
  ecfg.num_layers = 2;
  auto enc = std::make_shared<models::EGNN>(ecfg, rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 16;
  hcfg.num_blocks = 1;
  return std::make_unique<tasks::ScalarRegressionTask>(
      enc, "band_gap", hcfg, rng, data::TargetStats{1.4f, 1.1f});
}

data::DataLoaderOptions loader_opts(std::int64_t batch, std::int64_t rank,
                                    std::int64_t world) {
  data::DataLoaderOptions o;
  o.batch_size = batch;
  o.seed = 3;
  o.shuffle = false;
  o.rank = rank;
  o.world_size = world;
  o.collate.radius.cutoff = 4.0;
  return o;
}

train::DDPTrainer::Factory make_factory(
    const materials::MaterialsProjectDataset& ds) {
  return [&ds](std::int64_t rank, std::int64_t world) {
    train::RankContext ctx;
    auto task = make_task(13);
    ctx.train_loader = std::make_unique<data::DataLoader>(
        ds, loader_opts(4, rank, world));
    // lr 0.01 with grad_clip 1.0 (set in DDPOptions) keeps this recipe
    // stable: lr 0.05 unclipped diverges to NaN within one epoch.
    ctx.optimizer = std::make_unique<optim::SGD>(
        task->parameters(), optim::SGDOptions{.lr = 0.01});
    ctx.task = std::move(task);
    return ctx;
  };
}

TEST(DdpColl, CompressedTrainingConvergesNearIdentity) {
  materials::MaterialsProjectDataset ds(32, 27);
  const auto run = [&ds](comm::coll::CompressorKind kind) {
    train::DDPTrainer ddp;
    train::DDPOptions opts;
    opts.world_size = 2;
    opts.max_epochs = 2;
    opts.grad_clip = 1.0;
    opts.coll.compressor = kind;
    opts.coll.topk_fraction = 0.25;
    const train::DDPResult r = ddp.fit(make_factory(ds), opts);
    EXPECT_FALSE(r.epochs.empty());
    return r;
  };
  const train::DDPResult id = run(comm::coll::CompressorKind::kIdentity);
  const train::DDPResult i8 = run(comm::coll::CompressorKind::kInt8);
  const train::DDPResult tk = run(comm::coll::CompressorKind::kTopK);

  const double loss_id = id.epochs.back().train.at("loss");
  const double loss_i8 = i8.epochs.back().train.at("loss");
  const double loss_tk = tk.epochs.back().train.at("loss");
  ASSERT_TRUE(std::isfinite(loss_id));
  ASSERT_TRUE(std::isfinite(loss_i8));
  ASSERT_TRUE(std::isfinite(loss_tk));
  // DESIGN.md §12 tolerance: compressed runs stay within 50% relative
  // of identity after the same number of steps on this recipe.
  EXPECT_LT(std::fabs(loss_i8 - loss_id), 0.5 * loss_id + 1e-3);
  EXPECT_LT(std::fabs(loss_tk - loss_id), 0.5 * loss_id + 1e-3);
  // Wire accounting: identity ships fp32; int8 about a quarter of it.
  EXPECT_EQ(id.comm_bytes, id.comm_compressed_bytes);
  EXPECT_LT(i8.comm_compressed_bytes, i8.comm_bytes / 3);
  EXPECT_LT(tk.comm_compressed_bytes, tk.comm_bytes);
}

TEST(DdpColl, BucketedIdentityMatchesMonolithicPath) {
  materials::MaterialsProjectDataset ds(16, 29);
  const auto run = [&ds](bool buckets) {
    train::DDPTrainer ddp;
    train::DDPOptions opts;
    opts.world_size = 2;
    opts.max_epochs = 1;
    opts.grad_clip = 1.0;
    opts.use_buckets = buckets;
    return ddp.fit(make_factory(ds), opts);
  };
  const train::DDPResult bucketed = run(true);
  const train::DDPResult monolithic = run(false);
  // Identity bucketed reduction reproduces the monolithic numerics
  // bit-for-bit, so the training trajectories are identical.
  ASSERT_EQ(bucketed.epochs.size(), monolithic.epochs.size());
  EXPECT_DOUBLE_EQ(bucketed.epochs.back().train.at("loss"),
                   monolithic.epochs.back().train.at("loss"));
}

TEST(DdpColl, ElasticRecoveryAfterRankKilledMidEpoch) {
  materials::MaterialsProjectDataset ds(24, 31);
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "matsci_elastic_test")
          .string();
  std::filesystem::create_directories(ckpt_dir);

  // Fire the fault a few collectives past setup (per-param broadcasts +
  // checkpoint barrier), i.e. inside the first epoch's step loop.
  const std::int64_t setup_calls =
      static_cast<std::int64_t>(make_task(13)->parameters().size());

  train::DDPTrainer ddp;
  train::DDPOptions opts;
  opts.world_size = 3;
  opts.max_epochs = 2;
  opts.grad_clip = 1.0;
  opts.elastic = true;
  opts.checkpoint_dir = ckpt_dir;
  opts.fault_hook = [setup_calls](std::int64_t rank,
                                  std::int64_t collective_calls) {
    return rank == 1 && collective_calls > setup_calls + 8;
  };
  const train::DDPResult result = ddp.fit(make_factory(ds), opts);

  EXPECT_EQ(result.recoveries, 1);
  ASSERT_EQ(result.lost_ranks.size(), 1u);
  EXPECT_EQ(result.lost_ranks[0], 1);
  EXPECT_EQ(result.final_world, 2);
  ASSERT_FALSE(result.epochs.empty());
  EXPECT_TRUE(std::isfinite(result.epochs.back().train.at("loss")));
  bool saw_rank_lost = false;
  for (const auto& a : result.anomalies) {
    if (a.type == obs::health::AnomalyType::kRankLost) {
      saw_rank_lost = true;
      EXPECT_EQ(a.rank, 1);
    }
  }
  EXPECT_TRUE(saw_rank_lost);
  std::filesystem::remove_all(ckpt_dir);
}

TEST(DdpColl, ElasticRequiresCheckpointDir) {
  train::DDPTrainer ddp;
  train::DDPOptions opts;
  opts.world_size = 2;
  opts.elastic = true;  // no checkpoint_dir
  materials::MaterialsProjectDataset ds(8, 33);
  EXPECT_THROW(ddp.fit(make_factory(ds), opts), matsci::Error);
}

// ---------------------------------------------------------------------------
// PerfModel: compressed allreduce term
// ---------------------------------------------------------------------------

TEST(PerfModel, CompressedAllreduceScalesOnlyTheBandwidthTerm) {
  comm::PerfModel model;
  const std::int64_t bytes = 8 << 20;
  const double full = model.allreduce_seconds(8, bytes);
  const double same = model.compressed_allreduce_seconds(8, bytes, 1.0);
  EXPECT_DOUBLE_EQ(full, same);
  const double quarter = model.compressed_allreduce_seconds(8, bytes, 0.25);
  EXPECT_LT(quarter, full);
  // The alpha (latency) term survives compression: the saving is
  // strictly less than 4x even at ratio 0.25.
  EXPECT_GT(quarter, full / 4.0);
  EXPECT_DOUBLE_EQ(model.compressed_allreduce_seconds(1, bytes, 0.25), 0.0);
  EXPECT_THROW(model.compressed_allreduce_seconds(8, bytes, 0.0),
               matsci::Error);
  EXPECT_THROW(model.compressed_allreduce_seconds(8, bytes, 1.5),
               matsci::Error);
}

}  // namespace
}  // namespace matsci
