#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>

#include "core/macros.hpp"
#include "core/ops.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "obs/health.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "tasks/regression.hpp"
#include "train/ddp.hpp"
#include "train/trainer.hpp"

namespace matsci::obs::health {
namespace {

using core::RngEngine;
using train::FitResult;
using train::Trainer;
using train::TrainerOptions;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr float kNaNf = std::numeric_limits<float>::quiet_NaN();

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- building blocks ---------------------------------------------------------

std::unique_ptr<tasks::ScalarRegressionTask> make_task(std::uint64_t seed) {
  RngEngine rng(seed);
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 16;
  ecfg.pos_hidden = 8;
  ecfg.num_layers = 2;
  auto enc = std::make_shared<models::EGNN>(ecfg, rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 16;
  hcfg.num_blocks = 1;
  return std::make_unique<tasks::ScalarRegressionTask>(
      enc, "band_gap", hcfg, rng, data::TargetStats{1.4f, 1.1f});
}

data::DataLoaderOptions loader_opts(std::int64_t batch = 8) {
  data::DataLoaderOptions o;
  o.batch_size = batch;
  o.seed = 3;
  o.shuffle = false;
  o.collate.radius.cutoff = 4.0;
  return o;
}

/// Wraps a task and multiplies the loss by `factor` on one training
/// batch — the injected fault the monitor must catch. Registered as a
/// child module so parameters() pass through to the optimizer.
class FaultInjectionTask : public tasks::Task {
 public:
  FaultInjectionTask(std::shared_ptr<tasks::Task> inner,
                     std::int64_t trigger_batch, float factor)
      : trigger_(trigger_batch), factor_(factor) {
    inner_ = register_module("inner", std::move(inner));
  }

  tasks::TaskOutput step(const data::Batch& batch) const override {
    tasks::TaskOutput out = inner_->step(batch);
    if (is_training() && calls_++ == trigger_) {
      out.loss = core::mul_scalar(out.loss, factor_);
    }
    return out;
  }
  std::shared_ptr<models::Encoder> encoder() const override {
    return inner_->encoder();
  }

 private:
  std::shared_ptr<tasks::Task> inner_;
  std::int64_t trigger_;
  float factor_;
  mutable std::int64_t calls_ = 0;
};

HealthSnapshot snap(std::int64_t step, double loss, double grad_norm) {
  HealthSnapshot s;
  s.step = step;
  s.loss = loss;
  s.grad_norm = grad_norm;
  return s;
}

HealthOptions detector_opts() {
  HealthOptions o;
  o.enabled = true;
  o.window = 16;
  o.warmup_steps = 4;
  return o;
}

// --- RollingWindow -----------------------------------------------------------

TEST(RollingWindow, MedianAndMad) {
  RollingWindow w(8);
  for (const double v : {1.0, 2.0, 3.0, 4.0, 100.0}) w.push(v);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);  // robust to the outlier
  // deviations from 3: {2,1,0,1,97} -> median 1
  EXPECT_DOUBLE_EQ(w.mad(), 1.0);
}

TEST(RollingWindow, EvenSizeAveragesMiddlePair) {
  RollingWindow w(8);
  for (const double v : {1.0, 2.0, 3.0, 4.0}) w.push(v);
  EXPECT_DOUBLE_EQ(w.median(), 2.5);
}

TEST(RollingWindow, EvictsOldestAtCapacity) {
  RollingWindow w(4);
  for (const double v : {100.0, 1.0, 1.0, 1.0, 1.0}) w.push(v);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w.median(), 1.0);  // the 100 fell out of the window
}

// --- AnomalyDetector ---------------------------------------------------------

TEST(AnomalyDetector, QuietStreamFlagsNothing) {
  AnomalyDetector det(detector_opts());
  for (std::int64_t s = 1; s <= 50; ++s) {
    const double jitter = 0.01 * static_cast<double>(s % 5);
    EXPECT_TRUE(det.observe(snap(s, 1.0 + jitter, 2.0 + jitter)).empty())
        << "step " << s;
  }
}

TEST(AnomalyDetector, NonFiniteFiresImmediately) {
  AnomalyDetector det(detector_opts());
  const auto anomalies = det.observe(snap(1, kNaN, 1.0));
  ASSERT_EQ(anomalies.size(), 1u);  // step 1, no warmup needed
  EXPECT_EQ(anomalies[0].type, AnomalyType::kNonFiniteLoss);
  EXPECT_EQ(anomalies[0].step, 1);
}

TEST(AnomalyDetector, LossAndGradSpikesAfterWarmup) {
  AnomalyDetector det(detector_opts());
  for (std::int64_t s = 1; s <= 10; ++s) {
    ASSERT_TRUE(det.observe(snap(s, 1.0, 2.0)).empty());
  }
  const auto anomalies = det.observe(snap(11, 50.0, 200.0));
  ASSERT_EQ(anomalies.size(), 2u);
  EXPECT_EQ(anomalies[0].type, AnomalyType::kLossSpike);
  EXPECT_EQ(anomalies[1].type, AnomalyType::kGradNormSpike);
  EXPECT_DOUBLE_EQ(anomalies[0].value, 50.0);
  EXPECT_GT(anomalies[0].threshold, 1.0);
  // The spike was not absorbed into the window before being tested, and
  // a repeat at the old level is still healthy.
  EXPECT_TRUE(det.observe(snap(12, 1.0, 2.0)).empty());
}

TEST(AnomalyDetector, SpikeDuringWarmupIsNotFlagged) {
  AnomalyDetector det(detector_opts());
  EXPECT_TRUE(det.observe(snap(1, 1.0, 1.0)).empty());
  EXPECT_TRUE(det.observe(snap(2, 100.0, 100.0)).empty());  // warmup
}

TEST(AnomalyDetector, EpsFloorDominanceAfterWarmup) {
  AnomalyDetector det(detector_opts());
  auto adam_snap = [&](std::int64_t s, double frac) {
    HealthSnapshot sn = snap(s, 1.0, 1.0);
    sn.has_adam_stats = true;
    sn.frac_at_eps_floor = frac;
    return sn;
  };
  // All-at-floor during warmup (zero second moments) must not fire.
  EXPECT_TRUE(det.observe(adam_snap(1, 1.0)).empty());
  for (std::int64_t s = 2; s <= 10; ++s) {
    ASSERT_TRUE(det.observe(adam_snap(s, 0.1)).empty());
  }
  const auto anomalies = det.observe(adam_snap(11, 0.9));
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].type, AnomalyType::kEpsFloorDominance);
}

TEST(AnomalyDetector, CrossRankDivergenceAndNonFinite) {
  AnomalyDetector det(detector_opts());
  // Divergence shares the spike warmup (cold-start shards spread
  // naturally), so feed a quiet stream past warmup=4 first.
  for (std::int64_t s = 1; s <= 6; ++s) {
    EXPECT_TRUE(det.observe(snap(s, 1.0, 1.0)).empty());
  }
  CrossRankHealth cross;
  cross.reduced = true;
  cross.world_size = 4;
  cross.grad_norm_min = 1.0;
  cross.grad_norm_mean = 3.0;
  cross.grad_norm_max = 9.0;
  const auto diverged = det.observe_cross_rank(cross, 7, /*offender=*/2);
  ASSERT_EQ(diverged.size(), 1u);
  EXPECT_EQ(diverged[0].type, AnomalyType::kRankDivergence);
  EXPECT_EQ(diverged[0].rank, 2);
  EXPECT_DOUBLE_EQ(diverged[0].value, 9.0);

  cross.grad_norm_max = 5.0;  // spread 5 < ratio 8: healthy
  EXPECT_TRUE(det.observe_cross_rank(cross, 8, 2).empty());

  cross.nonfinite_ranks = 1;
  const auto poisoned = det.observe_cross_rank(cross, 9, 3);
  ASSERT_EQ(poisoned.size(), 1u);  // divergence not double-flagged
  EXPECT_EQ(poisoned[0].type, AnomalyType::kNonFiniteGrad);

  cross.nonfinite_ranks = 0;
  cross.grad_norm_min = 0.0;
  cross.grad_norm_max = 1e-13;  // cold start, not divergence
  EXPECT_TRUE(det.observe_cross_rank(cross, 10, 0).empty());
}

// --- FlightRecorder ----------------------------------------------------------

TEST(FlightRecorder, RingKeepsLastNOldestFirst) {
  FlightRecorder rec(3);
  for (std::int64_t s = 1; s <= 5; ++s) rec.record(snap(s, 0.0, 0.0));
  const auto hist = rec.history();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0].step, 3);
  EXPECT_EQ(hist[2].step, 5);
}

TEST(FlightRecorder, AmendLastOverwritesNewest) {
  FlightRecorder rec(3);
  rec.record(snap(1, 0.0, 0.0));
  rec.record(snap(2, 0.0, 0.0));
  HealthSnapshot amended = snap(2, 0.0, 0.0);
  amended.cross_rank.reduced = true;
  amended.cross_rank.world_size = 4;
  rec.amend_last(amended);
  const auto hist = rec.history();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_FALSE(hist[0].cross_rank.reduced);
  EXPECT_TRUE(hist[1].cross_rank.reduced);
  EXPECT_EQ(hist[1].cross_rank.world_size, 4);
}

TEST(FlightRecorder, DumpIsStrictJsonWithAllSections) {
  FlightRecorder rec(4);
  HealthSnapshot s = snap(7, 1.5, 2.5);
  s.layers.push_back(LayerHealth{"encoder.w\"eird", 1.0, 2.0, 0.1, 0});
  rec.record(s);

  Anomaly anomaly;
  anomaly.type = AnomalyType::kLossSpike;
  anomaly.step = 7;
  anomaly.value = 50.0;
  anomaly.detail = "test \"quoted\" detail";
  HealthOptions opts = detector_opts();

  const std::string path = temp_path("matsci_flight_test.json");
  const std::string written = rec.dump(path, "unit-test", {anomaly}, &opts);
  EXPECT_EQ(written, path);

  const std::string body = slurp(path);
  std::string error;
  EXPECT_TRUE(validate_json(body, &error)) << error;
  for (const char* key :
       {"\"schema\":\"matsci.flight.v1\"", "\"reason\":\"unit-test\"",
        "\"anomalies\":", "\"loss_spike\"", "\"config\":", "\"env\":",
        "\"health\":", "\"layers\":", "\"metrics\":", "\"trace\":",
        "\"traceEvents\""}) {
    EXPECT_NE(body.find(key), std::string::npos) << "missing " << key;
  }
  std::remove(path.c_str());
}

TEST(FlightRecorder, ResolvePathUsesBenchDirDefault) {
  EXPECT_EQ(resolve_flight_path("/tmp/x.json"), "/tmp/x.json");
  EXPECT_NE(resolve_flight_path("").find("flight_recorder.json"),
            std::string::npos);
}

// --- HealthMonitor on a real model ------------------------------------------

TEST(HealthMonitor, RecordsPerLayerStatsAndAdamProbe) {
  materials::MaterialsProjectDataset ds(16, 41);
  data::DataLoader loader(ds, loader_opts());
  auto task = make_task(41);
  optim::Adam opt = optim::make_adamw(task->parameters(), 1e-3);

  HealthOptions opts = detector_opts();
  HealthMonitor monitor(opts, *task, opt);

  opt.zero_grad();
  task->step(loader.batch(0)).loss.backward();
  const auto anomalies = monitor.on_step(1, 0.5);
  EXPECT_TRUE(anomalies.empty());

  const HealthSnapshot& last = monitor.last();
  EXPECT_EQ(last.step, 1);
  EXPECT_EQ(last.layers.size(), task->named_parameters().size());
  EXPECT_GT(last.grad_norm, 0.0);
  EXPECT_TRUE(last.has_adam_stats);  // probe auto-attached to Adam
  EXPECT_EQ(last.nonfinite_grads, 0);
  bool some_layer_nonzero = false;
  for (const LayerHealth& lh : last.layers) {
    EXPECT_TRUE(std::isfinite(lh.grad_norm));
    EXPECT_GT(lh.weight_norm, 0.0);
    if (lh.grad_norm > 0.0) some_layer_nonzero = true;
  }
  EXPECT_TRUE(some_layer_nonzero);
}

TEST(HealthMonitor, SgdOptimizerGetsNoAdamStats) {
  auto task = make_task(42);
  optim::SGD opt(task->parameters(), {.lr = 0.01});
  HealthMonitor monitor(detector_opts(), *task, opt);
  const auto anomalies = monitor.on_step(1, 0.5);
  EXPECT_TRUE(anomalies.empty());
  EXPECT_FALSE(monitor.last().has_adam_stats);
}

// --- Trainer integration -----------------------------------------------------

TrainerOptions health_trainer_opts() {
  TrainerOptions topts;
  topts.max_epochs = 2;  // 24 steps at 12 batches/epoch
  topts.health = detector_opts();
  // Small-batch training on this dataset is naturally noisy (per-batch
  // loss varies ~4x, grad norm ~12x within the first epoch, before the
  // rolling window has absorbed the spread). Only the injected x1000
  // fault should clear this ratio.
  topts.health.spike_min_ratio = 20.0;
  return topts;
}

TEST(TrainerHealth, GradientSpikeTriggersCallbackWithinOneStep) {
  materials::MaterialsProjectDataset ds(96, 43);
  data::DataLoader loader(ds, loader_opts());
  const std::int64_t trigger = 14;  // 0-based batch -> step 15, armed
  auto task = std::make_shared<FaultInjectionTask>(make_task(43), trigger,
                                                   1000.0f);
  optim::Adam opt = optim::make_adamw(task->parameters(), 1e-3);
  std::vector<Anomaly> seen;
  Trainer trainer(health_trainer_opts());
  const FitResult result =
      trainer.fit(*task, loader, nullptr, opt, nullptr, {},
                  [&](const Anomaly& a) { seen.push_back(a); });

  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front().step, trigger + 1);  // within one step
  bool loss_spike = false, grad_spike = false;
  for (const Anomaly& a : seen) {
    loss_spike |= a.type == AnomalyType::kLossSpike;
    grad_spike |= a.type == AnomalyType::kGradNormSpike;
    EXPECT_EQ(a.step, trigger + 1);  // nothing flagged after recovery
  }
  EXPECT_TRUE(loss_spike);
  EXPECT_TRUE(grad_spike);
  EXPECT_EQ(result.anomalies.size(), seen.size());
  EXPECT_EQ(result.skipped_steps, 0);  // log-and-continue
}

TEST(TrainerHealth, InjectedNanTriggersNonFiniteAnomalies) {
  materials::MaterialsProjectDataset ds(96, 44);
  data::DataLoader loader(ds, loader_opts());
  const std::int64_t trigger = 2;  // non-finite detection needs no warmup
  auto task =
      std::make_shared<FaultInjectionTask>(make_task(44), trigger, kNaNf);
  optim::Adam opt = optim::make_adamw(task->parameters(), 1e-3);
  TrainerOptions topts = health_trainer_opts();
  topts.max_epochs = 1;
  topts.health.policy = AnomalyPolicy::kSkipStep;
  const FitResult result = Trainer(topts).fit(*task, loader, nullptr, opt);

  bool nan_loss = false, nan_grad = false;
  for (const Anomaly& a : result.anomalies) {
    EXPECT_EQ(a.step, trigger + 1);
    nan_loss |= a.type == AnomalyType::kNonFiniteLoss;
    nan_grad |= a.type == AnomalyType::kNonFiniteGrad;
  }
  EXPECT_TRUE(nan_loss);
  EXPECT_TRUE(nan_grad);

  // The poisoned step was skipped, so parameters never went NaN and
  // training carried on for the remaining batches.
  EXPECT_EQ(result.skipped_steps, 1);
  EXPECT_EQ(result.total_steps, 11);  // 12 batches, one skipped
  for (core::Tensor p : task->parameters()) {
    for (const float w : p.span()) {
      ASSERT_TRUE(std::isfinite(w));
    }
  }
}

TEST(TrainerHealth, AbortPolicyThrowsAndDumpsBundle) {
  materials::MaterialsProjectDataset ds(96, 45);
  data::DataLoader loader(ds, loader_opts());
  const std::int64_t trigger = 3;
  auto task =
      std::make_shared<FaultInjectionTask>(make_task(45), trigger, kNaNf);
  optim::Adam opt = optim::make_adamw(task->parameters(), 1e-3);
  TrainerOptions topts = health_trainer_opts();
  topts.max_epochs = 1;
  topts.health.policy = AnomalyPolicy::kAbort;
  topts.health.flight_recorder_path = temp_path("matsci_abort_bundle.json");
  std::remove(topts.health.flight_recorder_path.c_str());

  EXPECT_THROW(Trainer(topts).fit(*task, loader, nullptr, opt), matsci::Error);

  const std::string body = slurp(topts.health.flight_recorder_path);
  ASSERT_FALSE(body.empty()) << "abort must write the flight bundle";
  std::string error;
  EXPECT_TRUE(validate_json(body, &error)) << error;
  EXPECT_NE(body.find("\"reason\":\"abort\""), std::string::npos);
  EXPECT_NE(body.find("\"non_finite_loss\""), std::string::npos);
  // The offending step's snapshot is in the history with per-layer stats.
  EXPECT_NE(body.find("\"step\":" + std::to_string(trigger + 1)),
            std::string::npos);
  EXPECT_NE(body.find("\"layers\":[{\"name\":"), std::string::npos);
  std::remove(topts.health.flight_recorder_path.c_str());
}

TEST(TrainerHealth, HealthySpikelessRunStaysQuiet) {
  materials::MaterialsProjectDataset ds(64, 46);
  data::DataLoader loader(ds, loader_opts());
  auto task = make_task(46);
  optim::Adam opt = optim::make_adamw(task->parameters(), 1e-3);
  TrainerOptions topts = health_trainer_opts();
  const FitResult result = Trainer(topts).fit(*task, loader, nullptr, opt);
  EXPECT_TRUE(result.anomalies.empty());
  EXPECT_EQ(result.skipped_steps, 0);
}

// --- DDP integration ---------------------------------------------------------

/// Rank-dependent fault: only `fault_rank` injects, so ranks disagree —
/// the cross-rank reduction must notice before the allreduce hides it.
train::DDPTrainer::Factory ddp_factory(
    const materials::MaterialsProjectDataset& ds, std::int64_t fault_rank,
    std::int64_t trigger, float factor) {
  return [&ds, fault_rank, trigger, factor](std::int64_t rank,
                                            std::int64_t ws) {
    train::RankContext ctx;
    // Every rank gets the wrapper (identical module tree, so broadcast
    // order matches), but only fault_rank's ever triggers.
    const bool faulty = rank == fault_rank;
    auto task = std::make_unique<FaultInjectionTask>(
        make_task(47), faulty ? trigger : -1, faulty ? factor : 1.0f);
    data::DataLoaderOptions lo = loader_opts(4);
    lo.rank = rank;
    lo.world_size = ws;
    ctx.train_loader = std::make_unique<data::DataLoader>(ds, lo);
    // Adam: stable on these tiny shards (SGD at any useful lr diverges
    // on its own, which would contaminate the injection signal).
    optim::AdamOptions aopts;
    aopts.lr = 1e-3;
    ctx.optimizer =
        std::make_unique<optim::Adam>(task->parameters(), aopts);
    ctx.task = std::move(task);
    return ctx;
  };
}

train::DDPOptions ddp_opts() {
  train::DDPOptions dopts;
  dopts.world_size = 2;
  dopts.max_epochs = 2;  // 8 steps at 4 batches/shard
  dopts.health = detector_opts();
  dopts.health.spike_min_ratio = 20.0;  // see health_trainer_opts()
  // Two 16-sample shards at batch 4 see genuinely different data, so
  // per-rank grad norms naturally spread up to ~24x early on; only the
  // x1000 injection should clear this ratio.
  dopts.health.rank_divergence_ratio = 100.0;
  return dopts;
}

TEST(DdpHealth, RankLocalSpikeFlagsRankDivergenceWithinOneStep) {
  materials::MaterialsProjectDataset ds(32, 47);
  const std::int64_t trigger = 5;  // step 6, past warmup=4
  train::DDPTrainer ddp;
  const train::DDPResult result =
      ddp.fit(ddp_factory(ds, /*fault_rank=*/1, trigger, 1000.0f),
              ddp_opts());

  ASSERT_FALSE(result.anomalies.empty());
  bool divergence = false;
  for (const Anomaly& a : result.anomalies) {
    if (a.type == AnomalyType::kRankDivergence) {
      divergence = true;
      EXPECT_EQ(a.step, trigger + 1);  // within one step
      EXPECT_EQ(a.rank, 1);            // the offender is identified
      EXPECT_GT(a.value, 8.0);
    }
  }
  EXPECT_TRUE(divergence);
}

TEST(DdpHealth, RankLocalNanFlagsNonFiniteWithinOneStep) {
  materials::MaterialsProjectDataset ds(32, 48);
  const std::int64_t trigger = 1;  // step 2: no warmup needed
  train::DDPTrainer ddp;
  train::DDPOptions dopts = ddp_opts();
  dopts.max_epochs = 1;
  dopts.health.policy = AnomalyPolicy::kSkipStep;
  const train::DDPResult result =
      ddp.fit(ddp_factory(ds, /*fault_rank=*/0, trigger, kNaNf), dopts);

  ASSERT_FALSE(result.anomalies.empty());
  bool nonfinite = false;
  for (const Anomaly& a : result.anomalies) {
    if (a.type == AnomalyType::kNonFiniteGrad) {
      nonfinite = true;
      EXPECT_EQ(a.step, trigger + 1);  // within one step
    }
  }
  EXPECT_TRUE(nonfinite);
  EXPECT_EQ(result.skipped_steps, 1);
}

TEST(DdpHealth, AbortPolicyPropagatesThroughRunRanks) {
  materials::MaterialsProjectDataset ds(32, 49);
  train::DDPTrainer ddp;
  train::DDPOptions dopts = ddp_opts();
  dopts.max_epochs = 1;
  dopts.health.policy = AnomalyPolicy::kAbort;
  dopts.health.flight_recorder_path = temp_path("matsci_ddp_bundle.json");
  std::remove(dopts.health.flight_recorder_path.c_str());

  EXPECT_THROW(ddp.fit(ddp_factory(ds, /*fault_rank=*/1, 1, kNaNf), dopts),
               matsci::Error);

  const std::string body = slurp(dopts.health.flight_recorder_path);
  ASSERT_FALSE(body.empty());
  std::string error;
  EXPECT_TRUE(validate_json(body, &error)) << error;
  EXPECT_NE(body.find("\"cross_rank\":"), std::string::npos);
  std::remove(dopts.health.flight_recorder_path.c_str());
}

TEST(DdpHealth, HealthyRunMatchesMonitorOffResult) {
  materials::MaterialsProjectDataset ds(32, 50);
  train::DDPTrainer ddp;
  const train::DDPResult with_health =
      ddp.fit(ddp_factory(ds, /*fault_rank=*/-1, 0, 1.0f), ddp_opts());
  train::DDPOptions off = ddp_opts();
  off.health.enabled = false;
  const train::DDPResult without =
      ddp.fit(ddp_factory(ds, /*fault_rank=*/-1, 0, 1.0f), off);

  EXPECT_TRUE(with_health.anomalies.empty());
  ASSERT_EQ(with_health.epochs.size(), without.epochs.size());
  // Monitoring must be purely observational: identical training result.
  for (std::size_t e = 0; e < with_health.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(with_health.epochs[e].train.at("loss"),
                     without.epochs[e].train.at("loss"));
  }
}

// --- crash handler -----------------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define MATSCI_HEALTH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MATSCI_HEALTH_TSAN 1
#endif
#endif

#if !defined(MATSCI_HEALTH_TSAN)
TEST(FlightRecorderDeathTest, TerminateDumpsBundle) {
  // Re-exec the binary for the death test: the shared pool and earlier
  // DDP rank threads make plain fork() unreliable.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path("matsci_crash_bundle.json");
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        FlightRecorder rec(4);
        HealthSnapshot s;
        s.step = 3;
        s.loss = 1.0;
        rec.record(s);
        rec.arm_crash_handler(path);
        std::terminate();
      },
      "");
  const std::string body = slurp(path);
  ASSERT_FALSE(body.empty()) << "terminate must write the crash bundle";
  std::string error;
  EXPECT_TRUE(validate_json(body, &error)) << error;
  EXPECT_NE(body.find("\"reason\":\"terminate\""), std::string::npos);
  EXPECT_NE(body.find("\"step\":3"), std::string::npos);
  std::remove(path.c_str());
}
#endif  // not TSan

TEST(FlightRecorder, DisarmIsIdempotentAndScoped) {
  const std::string path = temp_path("matsci_disarm_bundle.json");
  {
    FlightRecorder rec(2);
    rec.arm_crash_handler(path);
  }  // destructor disarms
  FlightRecorder::disarm_crash_handler();  // and again, harmlessly
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace matsci::obs::health
