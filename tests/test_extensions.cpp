// Tests for the extension modules: SchNet and point-cloud attention
// encoders, the energy/force task (autograd forces vs the MD ground
// truth), cosine annealing, and early stopping.
#include <gtest/gtest.h>

#include <cmath>

#include "core/graph_ops.hpp"
#include "core/macros.hpp"
#include "core/ops.hpp"
#include "data/collate.hpp"
#include "data/dataloader.hpp"
#include "materials/lips.hpp"
#include "materials/materials_project.hpp"
#include "models/attention.hpp"
#include "models/egnn.hpp"
#include "models/schnet.hpp"
#include "optim/adam.hpp"
#include "optim/lr_scheduler.hpp"
#include "optim/sgd.hpp"
#include "sym/symop.hpp"
#include "tasks/energy_force.hpp"
#include "tasks/regression.hpp"
#include "test_util.hpp"
#include "train/trainer.hpp"

namespace matsci {
namespace {

using core::RngEngine;
using core::Tensor;

data::Batch point_cloud_batch(std::int64_t atoms, std::uint64_t seed) {
  RngEngine rng(seed);
  data::StructureSample s;
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(1 + rng.next_int(8));
    s.positions.push_back(
        {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)});
  }
  s.scalar_targets["y"] = 0.0f;
  data::CollateOptions opts;
  opts.representation = data::Representation::kPointCloud;
  return data::collate({s}, opts);
}

template <typename EncoderT>
void expect_e3_invariant(const EncoderT& encoder, data::Batch batch,
                         double tol) {
  Tensor before = encoder.encode(batch);
  for (const auto& op : {sym::rotation({0.2, 0.9, -0.4}, 0.8),
                         sym::reflection({0.5, -1.0, 0.25})}) {
    data::Batch moved = batch;
    moved.coords = batch.coords.clone();
    for (std::int64_t i = 0; i < batch.coords.size(0); ++i) {
      const core::Vec3 p = {batch.coords.at(i, 0), batch.coords.at(i, 1),
                            batch.coords.at(i, 2)};
      const core::Vec3 q =
          core::matvec(op, p) + core::Vec3{1.3, -0.7, 0.2};  // + translation
      moved.coords.set(i, 0, static_cast<float>(q.x));
      moved.coords.set(i, 1, static_cast<float>(q.y));
      moved.coords.set(i, 2, static_cast<float>(q.z));
    }
    Tensor after = encoder.encode(moved);
    EXPECT_LT(matsci::testing::max_abs_diff(before, after), tol);
  }
}

TEST(SchNet, OutputShapeAndInvariance) {
  RngEngine rng(1);
  models::SchNetConfig cfg;
  cfg.hidden_dim = 16;
  cfg.num_interactions = 2;
  cfg.num_rbf = 8;
  models::SchNet encoder(cfg, rng);
  data::Batch batch = point_cloud_batch(6, 2);
  Tensor emb = encoder.encode(batch);
  EXPECT_EQ(emb.shape(), (core::Shape{1, 16}));
  expect_e3_invariant(encoder, batch, 1e-3);
}

TEST(SchNet, GradientsReachAllParameters) {
  RngEngine rng(3);
  models::SchNetConfig cfg;
  cfg.hidden_dim = 12;
  cfg.num_interactions = 2;
  cfg.num_rbf = 6;
  models::SchNet encoder(cfg, rng);
  core::sum(core::square(encoder.encode(point_cloud_batch(5, 4)))).backward();
  for (const auto& [name, p] : encoder.named_parameters()) {
    bool nonzero = false;
    core::Tensor t = p;
    for (const float g : t.grad_span()) {
      if (g != 0.0f) nonzero = true;
    }
    EXPECT_TRUE(nonzero) << "no gradient reached " << name;
  }
}

TEST(SchNet, LearnsBandGap) {
  materials::MaterialsProjectDataset ds(128, 21);
  auto [train_ds, val_ds] = data::train_val_split(ds, 0.25, 1);
  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.collate.radius.cutoff = 4.5;
  data::DataLoader train_loader(train_ds, lo), val_loader(val_ds, lo);
  RngEngine rng(5);
  models::SchNetConfig cfg;
  cfg.hidden_dim = 24;
  cfg.num_interactions = 2;
  cfg.num_rbf = 16;
  auto encoder = std::make_shared<models::SchNet>(cfg, rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 24;
  hcfg.num_blocks = 1;
  tasks::ScalarRegressionTask task(
      encoder, "band_gap", hcfg, rng,
      data::compute_target_stats(train_ds, "band_gap"));
  optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3);
  train::TrainerOptions topts;
  topts.max_epochs = 5;
  const auto result =
      train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
  EXPECT_LT(result.epochs.back().train.at("loss"),
            0.7 * result.epochs.front().train.at("loss"));
}

TEST(PointCloudAttention, OutputShapeAndInvariance) {
  RngEngine rng(7);
  models::PointCloudAttentionConfig cfg;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.num_rbf = 8;
  models::PointCloudAttentionEncoder encoder(cfg, rng);
  data::Batch batch = point_cloud_batch(6, 8);
  Tensor emb = encoder.encode(batch);
  EXPECT_EQ(emb.shape(), (core::Shape{1, 16}));
  expect_e3_invariant(encoder, batch, 1e-3);
}

TEST(PointCloudAttention, AttentionWeightsNormalizePerReceiver) {
  // Direct check of the primitive: segment_softmax output sums to 1 over
  // each receiver's incoming edges.
  RngEngine rng(9);
  Tensor logits = Tensor::randn({7, 1}, rng, 0.0f, 3.0f);
  const std::vector<std::int64_t> seg = {0, 1, 0, 2, 1, 0, 2};
  Tensor alpha = core::segment_softmax(logits, seg, 3);
  std::vector<double> sums(3, 0.0);
  for (std::int64_t r = 0; r < 7; ++r) {
    const float v = alpha.at(r, 0);
    EXPECT_GT(v, 0.0f);
    sums[static_cast<std::size_t>(seg[static_cast<std::size_t>(r)])] += v;
  }
  for (const double s : sums) EXPECT_NEAR(s, 1.0, 1e-5);
}

TEST(PointCloudAttention, GradientsReachAllParameters) {
  RngEngine rng(11);
  models::PointCloudAttentionConfig cfg;
  cfg.hidden_dim = 12;
  cfg.num_layers = 2;
  cfg.num_rbf = 6;
  models::PointCloudAttentionEncoder encoder(cfg, rng);
  core::sum(core::square(encoder.encode(point_cloud_batch(5, 12))))
      .backward();
  for (const auto& [name, p] : encoder.named_parameters()) {
    // The score MLP's output bias shifts every edge score in a segment
    // equally, and segment_softmax is shift-invariant, so its true
    // gradient is exactly zero — any nonzero value there is rounding
    // noise (backend-dependent).
    if (name.ends_with("score_mlp.layer1.bias")) continue;
    bool nonzero = false;
    core::Tensor t = p;
    for (const float g : t.grad_span()) {
      if (g != 0.0f) nonzero = true;
    }
    EXPECT_TRUE(nonzero) << "no gradient reached " << name;
  }
}

TEST(GaussianRbf, ValuesAndCenters) {
  Tensor d = Tensor::from_vector({1.0f}, {1, 1});
  const auto centers = core::linspace_centers(0.0f, 2.0f, 3);  // 0, 1, 2
  Tensor rbf = core::gaussian_rbf(d, centers, 1.0f);
  EXPECT_EQ(rbf.shape(), (core::Shape{1, 3}));
  EXPECT_NEAR(rbf.at(0, 1), 1.0, 1e-6);               // at the center
  EXPECT_NEAR(rbf.at(0, 0), std::exp(-1.0), 1e-6);    // 1 Å away
  EXPECT_NEAR(rbf.at(0, 2), std::exp(-1.0), 1e-6);
  EXPECT_THROW(core::gaussian_rbf(d, {}, 1.0f), matsci::Error);
  EXPECT_THROW(core::linspace_centers(2.0f, 0.0f, 3), matsci::Error);
}

class EnergyForceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    lips_ = std::make_unique<materials::LiPSDataset>(24, 3);
    RngEngine rng(13);
    models::EGNNConfig ecfg;
    ecfg.hidden_dim = 24;
    ecfg.pos_hidden = 8;
    ecfg.num_layers = 2;
    auto encoder = std::make_shared<models::EGNN>(ecfg, rng);
    models::OutputHeadConfig hcfg;
    hcfg.hidden_dim = 24;
    hcfg.num_blocks = 1;
    hcfg.dropout = 0.0f;
    task_ = std::make_unique<tasks::EnergyForceTask>(
        encoder, "energy", hcfg, rng,
        data::compute_target_stats(*lips_, "energy"));
  }

  data::Batch make_batch(std::int64_t count) {
    std::vector<data::StructureSample> samples;
    for (std::int64_t i = 0; i < count; ++i) samples.push_back(lips_->get(i));
    data::CollateOptions copts;
    copts.radius.cutoff = 4.5;
    return data::collate(samples, copts);
  }

  std::unique_ptr<materials::LiPSDataset> lips_;
  std::unique_ptr<tasks::EnergyForceTask> task_;
};

TEST_F(EnergyForceFixture, CollateCarriesForces) {
  const data::Batch batch = make_batch(2);
  ASSERT_TRUE(batch.forces.defined());
  EXPECT_EQ(batch.forces.shape(), (core::Shape{batch.num_nodes(), 3}));
}

TEST_F(EnergyForceFixture, TrainingStepHasEnergyLossOnly) {
  task_->train(true);
  const tasks::TaskOutput out = task_->step(make_batch(4));
  EXPECT_TRUE(std::isfinite(out.loss.item()));
  EXPECT_TRUE(out.metrics.count("energy_mae"));
  EXPECT_FALSE(out.metrics.count("force_mae"));  // eval-mode only
}

TEST_F(EnergyForceFixture, EvalStepReportsForceMae) {
  task_->train(false);
  core::NoGradGuard no_grad;  // as Trainer::evaluate would run it
  const tasks::TaskOutput out = task_->step(make_batch(4));
  ASSERT_TRUE(out.metrics.count("force_mae"));
  EXPECT_TRUE(std::isfinite(out.metrics.at("force_mae")));
  EXPECT_GT(out.metrics.at("force_mae"), 0.0);
}

TEST_F(EnergyForceFixture, PredictForcesMatchesFiniteDifference) {
  // The autograd force must equal -dE/dx of the *model*, checked by
  // central differences on one coordinate.
  const data::Batch batch = make_batch(1);
  const core::Tensor forces = task_->predict_forces(batch);
  ASSERT_EQ(forces.shape(), (core::Shape{batch.num_nodes(), 3}));

  const double h = 1e-2;
  auto model_total_energy = [&](const data::Batch& b) {
    core::Tensor e = task_->predict_energy(b);
    double total = 0.0;
    // Per-atom energy times atom count (single graph here).
    total = e.at(0, 0) * static_cast<double>(b.num_nodes());
    return total;
  };
  data::Batch plus = batch;
  plus.coords = batch.coords.clone();
  plus.coords.set(2, 1, batch.coords.at(2, 1) + static_cast<float>(h));
  data::Batch minus = batch;
  minus.coords = batch.coords.clone();
  minus.coords.set(2, 1, batch.coords.at(2, 1) - static_cast<float>(h));
  const double numeric =
      -(model_total_energy(plus) - model_total_energy(minus)) / (2.0 * h);
  EXPECT_NEAR(forces.at(2, 1), numeric,
              5e-2 * std::max(1.0, std::fabs(numeric)));
}

TEST_F(EnergyForceFixture, PredictForcesPreservesParamGrads) {
  // Accumulate a training gradient, then ensure force evaluation does
  // not corrupt it.
  task_->train(true);
  const data::Batch batch = make_batch(2);
  const tasks::TaskOutput out = task_->step(batch);
  out.loss.backward();
  const auto params = task_->parameters();
  std::vector<float> before;
  for (const core::Tensor& p : params) {
    auto g = p.impl()->grad;
    before.insert(before.end(), g.begin(), g.end());
  }
  (void)task_->predict_forces(batch);
  std::vector<float> after;
  for (const core::Tensor& p : params) {
    auto g = p.impl()->grad;
    after.insert(after.end(), g.begin(), g.end());
  }
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]) << "grad corrupted at " << i;
  }
}

TEST_F(EnergyForceFixture, EnergyTrainingReducesLoss) {
  data::DataLoaderOptions lo;
  lo.batch_size = 8;
  lo.collate.radius.cutoff = 4.5;
  data::DataLoader loader(*lips_, lo);
  optim::Adam opt = optim::make_adamw(task_->parameters(), 3e-3);
  train::TrainerOptions topts;
  topts.max_epochs = 6;
  const auto result = train::Trainer(topts).fit(*task_, loader, nullptr, opt);
  EXPECT_LT(result.epochs.back().train.at("loss"),
            0.5 * result.epochs.front().train.at("loss"));
}

TEST(CosineAnnealing, ShapeAndEndpoints) {
  Tensor x = Tensor::ones({1}).set_requires_grad(true);
  optim::SGD opt({x}, {.lr = 1.0});
  optim::CosineAnnealing sched(opt, 1.0, /*total_epochs=*/10, /*min_lr=*/0.1);
  EXPECT_NEAR(opt.lr(), 1.0, 1e-12);  // cos(0) = 1
  std::vector<double> lrs = {opt.lr()};
  for (int e = 0; e < 12; ++e) {
    sched.epoch_step();
    lrs.push_back(opt.lr());
  }
  // Monotone decreasing until total_epochs, then floored at min_lr.
  for (int e = 1; e <= 10; ++e) EXPECT_LT(lrs[e], lrs[e - 1]);
  EXPECT_NEAR(lrs[10], 0.1, 1e-9);
  EXPECT_NEAR(lrs[12], 0.1, 1e-9);
  // Halfway point: mean of base and min.
  EXPECT_NEAR(lrs[5], 0.55, 1e-9);
  EXPECT_THROW(optim::CosineAnnealing(opt, 1.0, 0), matsci::Error);
  EXPECT_THROW(optim::CosineAnnealing(opt, 1.0, 5, 2.0), matsci::Error);
}

TEST(EarlyStopping, StopsWhenMetricStalls) {
  materials::MaterialsProjectDataset ds(64, 31);
  auto [train_ds, val_ds] = data::train_val_split(ds, 0.25, 2);
  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.collate.radius.cutoff = 4.0;
  data::DataLoader train_loader(train_ds, lo), val_loader(val_ds, lo);
  RngEngine rng(17);
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 8;
  ecfg.pos_hidden = 4;
  ecfg.num_layers = 1;
  auto encoder = std::make_shared<models::EGNN>(ecfg, rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 8;
  hcfg.num_blocks = 0;
  tasks::ScalarRegressionTask task(encoder, "band_gap", hcfg, rng);
  // Zero-ish learning rate: validation cannot improve -> stop at patience.
  optim::SGD opt(task.parameters(), {.lr = 1e-12});
  train::TrainerOptions topts;
  topts.max_epochs = 50;
  topts.early_stopping_patience = 3;
  const auto result =
      train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
  EXPECT_LE(result.epochs.size(), 5u);  // 1 best + 3 patience (+ slack)
}

TEST(EarlyStopping, RequiresValidationLoader) {
  materials::MaterialsProjectDataset ds(16, 32);
  data::DataLoaderOptions lo;
  lo.batch_size = 8;
  data::DataLoader loader(ds, lo);
  RngEngine rng(18);
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 8;
  ecfg.pos_hidden = 4;
  ecfg.num_layers = 1;
  auto encoder = std::make_shared<models::EGNN>(ecfg, rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 8;
  hcfg.num_blocks = 0;
  tasks::ScalarRegressionTask task(encoder, "band_gap", hcfg, rng);
  optim::SGD opt(task.parameters(), {.lr = 1e-3});
  train::TrainerOptions topts;
  topts.early_stopping_patience = 2;
  EXPECT_THROW(train::Trainer(topts).fit(task, loader, nullptr, opt),
               matsci::Error);
}

}  // namespace
}  // namespace matsci
