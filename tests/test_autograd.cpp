#include <gtest/gtest.h>

#include "core/graph_ops.hpp"
#include "core/macros.hpp"
#include "core/ops.hpp"
#include "test_util.hpp"

namespace matsci::core {
namespace {

using matsci::testing::gradcheck;

Tensor make_input(Shape shape, std::uint64_t seed, float lo = -2.0f,
                  float hi = 2.0f) {
  RngEngine rng(seed);
  return Tensor::rand_uniform(std::move(shape), rng, lo, hi)
      .set_requires_grad(true);
}

TEST(Autograd, AddSameShape) {
  gradcheck([](auto& in) { return sum(add(in[0], in[1])); },
            {make_input({3, 4}, 1), make_input({3, 4}, 2)});
}

TEST(Autograd, AddRowBroadcast) {
  gradcheck([](auto& in) { return sum(add(in[0], in[1])); },
            {make_input({3, 4}, 1), make_input({4}, 2)});
}

TEST(Autograd, AddColBroadcast) {
  gradcheck([](auto& in) { return sum(add(in[0], in[1])); },
            {make_input({3, 4}, 1), make_input({3, 1}, 2)});
}

TEST(Autograd, AddScalarBroadcast) {
  gradcheck([](auto& in) { return sum(add(in[0], in[1])); },
            {make_input({3, 4}, 1), make_input({1}, 2)});
}

TEST(Autograd, MulAllBroadcasts) {
  gradcheck([](auto& in) { return sum(mul(in[0], in[1])); },
            {make_input({2, 3}, 3), make_input({2, 3}, 4)});
  gradcheck([](auto& in) { return sum(mul(in[0], in[1])); },
            {make_input({2, 3}, 3), make_input({3}, 4)});
  gradcheck([](auto& in) { return sum(mul(in[0], in[1])); },
            {make_input({2, 3}, 3), make_input({2, 1}, 4)});
}

TEST(Autograd, SubAndDiv) {
  gradcheck([](auto& in) { return sum(sub(in[0], in[1])); },
            {make_input({2, 3}, 5), make_input({2, 3}, 6)});
  // Divisor bounded away from zero.
  gradcheck([](auto& in) { return sum(div(in[0], in[1])); },
            {make_input({2, 3}, 7), make_input({2, 3}, 8, 1.0f, 3.0f)});
}

TEST(Autograd, UnaryElementwise) {
  gradcheck([](auto& in) { return sum(square(in[0])); }, {make_input({6}, 9)});
  gradcheck([](auto& in) { return sum(exp(in[0])); },
            {make_input({6}, 10, -1.0f, 1.0f)});
  gradcheck([](auto& in) { return sum(log(in[0])); },
            {make_input({6}, 11, 0.5f, 3.0f)});
  gradcheck([](auto& in) { return sum(sqrt(in[0])); },
            {make_input({6}, 12, 0.5f, 3.0f)});
  gradcheck([](auto& in) { return sum(rsqrt(in[0])); },
            {make_input({6}, 13, 0.5f, 3.0f)});
  gradcheck([](auto& in) { return sum(sigmoid(in[0])); },
            {make_input({6}, 14)});
  gradcheck([](auto& in) { return sum(tanh(in[0])); }, {make_input({6}, 15)});
}

TEST(Autograd, Activations) {
  gradcheck([](auto& in) { return sum(silu(in[0])); }, {make_input({8}, 16)});
  gradcheck([](auto& in) { return sum(selu(in[0])); }, {make_input({8}, 17)});
  gradcheck([](auto& in) { return sum(gelu(in[0])); }, {make_input({8}, 18)});
  gradcheck([](auto& in) { return sum(softplus(in[0])); },
            {make_input({8}, 19)});
  // ReLU / abs / clamp away from their kinks.
  gradcheck([](auto& in) { return sum(relu(in[0])); },
            {make_input({6}, 20, 0.5f, 2.0f)});
  gradcheck([](auto& in) { return sum(abs(in[0])); },
            {make_input({6}, 21, 0.5f, 2.0f)});
  gradcheck([](auto& in) { return sum(clamp(in[0], -0.4f, 0.4f)); },
            {make_input({6}, 22, 0.5f, 2.0f)});
}

TEST(Autograd, Reductions) {
  gradcheck([](auto& in) { return mean(in[0]); }, {make_input({3, 4}, 23)});
  gradcheck([](auto& in) { return sum(sum_dim(in[0], 0, true)); },
            {make_input({3, 4}, 24)});
  gradcheck([](auto& in) { return sum(sum_dim(in[0], 1, true)); },
            {make_input({3, 4}, 25)});
  gradcheck([](auto& in) { return sum(mean_dim(in[0], 1, false)); },
            {make_input({3, 4}, 26)});
}

TEST(Autograd, MatmulBothSides) {
  gradcheck([](auto& in) { return sum(matmul(in[0], in[1])); },
            {make_input({3, 4}, 27), make_input({4, 2}, 28)});
}

TEST(Autograd, Transpose) {
  gradcheck([](auto& in) { return sum(square(transpose2d(in[0]))); },
            {make_input({3, 4}, 29)});
}

TEST(Autograd, ReshapeConcatSlice) {
  gradcheck([](auto& in) { return sum(square(reshape(in[0], {4, 3}))); },
            {make_input({3, 4}, 30)});
  gradcheck(
      [](auto& in) { return sum(square(concat_cols({in[0], in[1]}))); },
      {make_input({3, 2}, 31), make_input({3, 4}, 32)});
  gradcheck(
      [](auto& in) { return sum(square(concat_rows({in[0], in[1]}))); },
      {make_input({2, 3}, 33), make_input({4, 3}, 34)});
  gradcheck([](auto& in) { return sum(square(slice_cols(in[0], 1, 2))); },
            {make_input({3, 4}, 35)});
  gradcheck([](auto& in) { return sum(square(slice_rows(in[0], 1, 2))); },
            {make_input({4, 3}, 36)});
}

TEST(Autograd, Losses) {
  gradcheck([](auto& in) { return mse_loss(in[0], in[1]); },
            {make_input({5, 1}, 37), make_input({5, 1}, 38)});
  gradcheck([](auto& in) { return huber_loss(in[0], in[1], 0.7f); },
            {make_input({5, 1}, 39), make_input({5, 1}, 40)});
  const std::vector<std::int64_t> labels = {0, 2, 1, 2};
  gradcheck([&labels](auto& in) { return cross_entropy(in[0], labels); },
            {make_input({4, 3}, 41)});
  Tensor targets = Tensor::from_vector({0, 1, 1, 0, 1}, {5, 1});
  gradcheck([&targets](auto& in) { return bce_with_logits(in[0], targets); },
            {make_input({5, 1}, 42)});
}

TEST(Autograd, SoftmaxRows) {
  gradcheck(
      [](auto& in) {
        // Weighted sum so the softmax backward is non-trivial.
        Tensor w = Tensor::from_vector({0.3f, -1.2f, 0.7f}, {3});
        return sum(mul(softmax_rows(in[0]), w));
      },
      {make_input({4, 3}, 43)});
}

TEST(Autograd, GatherAndSegmentOps) {
  const std::vector<std::int64_t> idx = {2, 0, 1, 2, 2};
  gradcheck(
      [&idx](auto& in) { return sum(square(gather_rows(in[0], idx))); },
      {make_input({3, 4}, 44)});
  const std::vector<std::int64_t> seg = {0, 1, 0, 2, 1};
  gradcheck(
      [&seg](auto& in) { return sum(square(segment_sum(in[0], seg, 3))); },
      {make_input({5, 3}, 45)});
  gradcheck(
      [&seg](auto& in) { return sum(square(segment_mean(in[0], seg, 3))); },
      {make_input({5, 3}, 46)});
  gradcheck(
      [&seg](auto& in) { return sum(square(segment_max(in[0], seg, 3))); },
      {make_input({5, 3}, 47)});
}

TEST(Autograd, SegmentSoftmax) {
  const std::vector<std::int64_t> seg = {0, 1, 0, 2, 1, 0};
  gradcheck(
      [&seg](auto& in) {
        Tensor w = Tensor::from_vector({1.5f, -0.7f, 0.2f, 2.0f, -1.1f, 0.6f},
                                       {6, 1});
        return sum(mul(segment_softmax(in[0], seg, 3), w));
      },
      {make_input({6, 1}, 50)});
}

TEST(Autograd, GaussianRbf) {
  const std::vector<float> centers = {0.5f, 1.5f, 2.5f};
  gradcheck(
      [&centers](auto& in) {
        return sum(square(gaussian_rbf(in[0], centers, 2.0f)));
      },
      {make_input({5, 1}, 51, 0.2f, 3.0f)});
}

TEST(Autograd, RowSqNorm) {
  gradcheck([](auto& in) { return sum(row_sq_norm(in[0])); },
            {make_input({4, 3}, 48)});
}

TEST(Autograd, DiamondReuseAccumulates) {
  // f(x) = sum(x*x + x) uses x twice; grad = 2x + 1.
  Tensor x = Tensor::from_vector({1.0f, -2.0f, 3.0f}, {3});
  x.set_requires_grad(true);
  Tensor y = sum(add(mul(x, x), x));
  y.backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 3.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1), -3.0f);
  EXPECT_FLOAT_EQ(x.grad().at(2), 7.0f);
}

TEST(Autograd, ChainedGraphGradcheck) {
  // A miniature message-passing-like composite.
  const std::vector<std::int64_t> src = {0, 1, 2, 0};
  const std::vector<std::int64_t> dst = {1, 2, 0, 2};
  gradcheck(
      [&](auto& in) {
        Tensor h = in[0];
        Tensor hj = gather_rows(h, src);
        Tensor hi = gather_rows(h, dst);
        Tensor m = silu(mul(hi, hj));
        Tensor agg = segment_sum(m, dst, 3);
        return sum(square(add(h, agg)));
      },
      {make_input({3, 4}, 49)});
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor x = Tensor::ones({3}).set_requires_grad(true);
  Tensor y = mul_scalar(x, 2.0f);
  EXPECT_THROW(y.backward(), matsci::Error);
}

TEST(Autograd, NoGradThroughDetachedBranch) {
  Tensor x = Tensor::ones({2}).set_requires_grad(true);
  Tensor d = mul_scalar(x, 3.0f).detach();
  Tensor y = sum(mul(x, d));  // d is a constant
  y.backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 3.0f);
}

TEST(Autograd, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::ones({2}).set_requires_grad(true);
  sum(x).backward();
  sum(x).backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 2.0f);
}

}  // namespace
}  // namespace matsci::core
