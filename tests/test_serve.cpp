// Tests for the inference-serving subsystem: micro-batching flush
// policy, batched-vs-single bit-exactness, concurrent correctness,
// shutdown drain, checkpoint loading, and per-request head selection.
// These live in their own binary (ctest label `serve`) so they can run
// under TSan via -DMATSCI_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/macros.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "optim/adam.hpp"
#include "serve/serve.hpp"
#include "tasks/multitask.hpp"
#include "tasks/regression.hpp"
#include "train/checkpoint.hpp"

namespace matsci::serve {
namespace {

using core::RngEngine;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

models::EGNNConfig tiny_encoder_config() {
  models::EGNNConfig cfg;
  cfg.hidden_dim = 16;
  cfg.pos_hidden = 8;
  cfg.num_layers = 2;
  return cfg;
}

models::OutputHeadConfig tiny_head_config() {
  models::OutputHeadConfig cfg;
  cfg.hidden_dim = 16;
  cfg.num_blocks = 2;
  cfg.dropout = 0.2f;  // non-zero on purpose: eval mode must silence it
  return cfg;
}

/// Band-gap regression task on the simulated Materials Project profile.
std::shared_ptr<tasks::ScalarRegressionTask> make_task(std::uint64_t seed) {
  RngEngine rng(seed);
  auto encoder =
      std::make_shared<models::EGNN>(tiny_encoder_config(), rng);
  return std::make_shared<tasks::ScalarRegressionTask>(
      encoder, "band_gap", tiny_head_config(), rng,
      data::TargetStats{2.0f, 1.5f});
}

InferenceSessionOptions session_options() {
  InferenceSessionOptions opts;
  opts.collate.radius.cutoff = 4.5;
  return opts;
}

std::vector<data::StructureSample> sample_pool(std::int64_t n,
                                               std::uint64_t seed) {
  materials::MaterialsProjectDataset ds(n, seed);
  std::vector<data::StructureSample> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) pool.push_back(ds.get(i));
  return pool;
}

// --- ServerStats ------------------------------------------------------------

TEST(ServerStats, CountsHistogramAndPercentiles) {
  ServerStats stats;
  stats.record_batch(4, {100.0, 200.0, 300.0, 400.0});
  stats.record_batch(2, {500.0, 600.0});
  stats.record_batch(4, {700.0, 800.0, 900.0, 1000.0});

  EXPECT_EQ(stats.requests_served(), 10);
  EXPECT_EQ(stats.batches_executed(), 3);
  EXPECT_NEAR(stats.mean_batch_size(), 10.0 / 3.0, 1e-12);
  const auto hist = stats.batch_size_histogram();
  EXPECT_EQ(hist.at(4), 2);
  EXPECT_EQ(hist.at(2), 1);

  const LatencySummary s = stats.latency_summary();
  EXPECT_NEAR(s.p50_us, 500.0, 100.0 + 1e-9);
  EXPECT_GE(s.p95_us, 900.0);
  EXPECT_EQ(s.max_us, 1000.0);
  EXPECT_NEAR(s.mean_us, 550.0, 1e-9);

  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"requests\":10"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\":"), std::string::npos);

  stats.reset();
  EXPECT_EQ(stats.requests_served(), 0);
  EXPECT_EQ(stats.latency_summary().max_us, 0.0);
}

// --- RequestQueue flush policy ----------------------------------------------

PredictRequest make_request(const data::StructureSample& s,
                            const std::string& target) {
  PredictRequest r;
  r.structure = s;
  r.target = target;
  return r;
}

TEST(RequestQueue, FlushesImmediatelyAtMaxBatchSize) {
  const auto pool = sample_pool(4, 11);
  RequestQueue queue;
  std::vector<std::future<PredictResult>> futures;
  for (const auto& s : pool) {
    futures.push_back(queue.push(make_request(s, "band_gap")));
  }
  const auto t0 = std::chrono::steady_clock::now();
  // A full batch must not wait out the 1-second deadline.
  auto batch = queue.pop_batch(4, 1'000'000);
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_LT(ms, 200.0);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueue, FlushesOnDeadlineWithPartialBatch) {
  const auto pool = sample_pool(2, 12);
  RequestQueue queue;
  queue.push(make_request(pool[0], "band_gap"));
  queue.push(make_request(pool[1], "band_gap"));
  auto batch = queue.pop_batch(8, /*max_wait_us=*/20'000);
  EXPECT_EQ(batch.size(), 2u);  // deadline flush, not a hang
}

TEST(RequestQueue, BatchesAreSingleTarget) {
  const auto pool = sample_pool(4, 13);
  RequestQueue queue;
  queue.push(make_request(pool[0], "band_gap"));
  queue.push(make_request(pool[1], "efermi"));
  queue.push(make_request(pool[2], "band_gap"));
  queue.push(make_request(pool[3], "efermi"));

  auto first = queue.pop_batch(8, 10'000);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].request.target, "band_gap");
  EXPECT_EQ(first[1].request.target, "band_gap");

  auto second = queue.pop_batch(8, 10'000);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].request.target, "efermi");
  EXPECT_EQ(second[1].request.target, "efermi");
}

TEST(RequestQueue, FullQueueRejectsAtCapacity) {
  const auto pool = sample_pool(3, 15);
  RequestQueue queue(/*capacity=*/2);
  EXPECT_EQ(queue.capacity(), 2u);
  auto f1 = queue.push(make_request(pool[0], "band_gap"));
  auto f2 = queue.push(make_request(pool[1], "band_gap"));

  // Third request: non-throwing path reports kQueueFull, throwing path
  // sheds with ShedError (catchable as matsci::Error too).
  PushResult r = queue.try_push(make_request(pool[2], "band_gap"));
  EXPECT_EQ(r.status, PushStatus::kQueueFull);
  EXPECT_FALSE(r.future.valid());
  EXPECT_THROW(queue.push(make_request(pool[2], "band_gap")), ShedError);
  EXPECT_EQ(queue.rejected_full(), 2);
  EXPECT_EQ(queue.size(), 2u);

  // Popping frees capacity for new arrivals.
  auto batch = queue.pop_batch(8, 0);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(queue.try_push(make_request(pool[2], "band_gap")).status,
            PushStatus::kAccepted);
}

TEST(RequestQueue, ZeroMaxWaitFlushesImmediately) {
  const auto pool = sample_pool(2, 16);
  RequestQueue queue;
  queue.push(make_request(pool[0], "band_gap"));
  queue.push(make_request(pool[1], "band_gap"));
  const auto t0 = std::chrono::steady_clock::now();
  // max_wait_us = 0: no coalescing window — take what matches right now.
  auto batch = queue.pop_batch(8, 0);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_LT(ms, 150.0);
}

TEST(RequestQueue, ShutdownDrainsQueuedButUnbatchedRequests) {
  const auto pool = sample_pool(5, 17);
  RequestQueue queue;
  for (int i = 0; i < 3; ++i) {
    queue.push(make_request(pool[static_cast<std::size_t>(i)], "band_gap"));
  }
  queue.push(make_request(pool[3], "efermi"));
  queue.push(make_request(pool[4], "efermi"));
  queue.shutdown();

  // Everything accepted before shutdown keeps flowing out, one
  // homogeneous batch per pop, then the drained-empty exit signal.
  auto first = queue.pop_batch(8, 1'000'000);
  EXPECT_EQ(first.size(), 3u);
  auto second = queue.pop_batch(8, 1'000'000);
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].request.target, "efermi");
  EXPECT_TRUE(queue.pop_batch(8, 1'000'000).empty());
}

TEST(RequestQueue, InteractiveAnchorPreemptsOlderBatchTraffic) {
  const auto pool = sample_pool(3, 18);
  RequestQueue queue;
  PredictRequest bulk = make_request(pool[0], "efermi");
  bulk.priority = Priority::kBatch;
  queue.push(std::move(bulk));
  PredictRequest urgent = make_request(pool[1], "band_gap");
  urgent.priority = Priority::kInteractive;
  queue.push(std::move(urgent));

  // The anchor is the most urgent queued request, not the oldest: the
  // interactive band_gap request dispatches ahead of the earlier bulk
  // efermi request.
  auto first = queue.pop_batch(8, 0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].request.target, "band_gap");
  auto second = queue.pop_batch(8, 0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].request.target, "efermi");
}

TEST(RequestQueue, ExpiredRequestsAreShedOnPop) {
  const auto pool = sample_pool(2, 19);
  RequestQueue queue;
  PredictRequest stale = make_request(pool[0], "band_gap");
  stale.deadline = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1);  // already expired
  auto stale_future = queue.push(std::move(stale));
  auto fresh_future = queue.push(make_request(pool[1], "band_gap"));

  auto batch = queue.pop_batch(8, 0);
  ASSERT_EQ(batch.size(), 1u);  // only the fresh request dispatches
  EXPECT_EQ(queue.deadline_drops(), 1);
  EXPECT_THROW(stale_future.get(), ShedError);
  batch[0].promise.set_value({});
  EXPECT_NO_THROW(fresh_future.get());
}

TEST(RequestQueue, PushAfterShutdownThrows) {
  const auto pool = sample_pool(1, 14);
  RequestQueue queue;
  queue.shutdown();
  EXPECT_TRUE(queue.is_shutdown());
  EXPECT_THROW(queue.push(make_request(pool[0], "band_gap")), matsci::Error);
  EXPECT_TRUE(queue.pop_batch(4, 1000).empty());
}

// --- InferenceSession -------------------------------------------------------

TEST(InferenceSession, SingleEqualsBatchedBitExact) {
  auto session =
      std::make_shared<InferenceSession>(make_task(31), session_options());
  const auto pool = sample_pool(6, 32);

  // One forward over the whole pool...
  const auto batched = session->predict(pool, "band_gap");
  ASSERT_EQ(batched.size(), pool.size());
  // ...must agree bit-for-bit with six single-structure forwards:
  // per-graph compute in the batched-CSR path is independent, so the
  // float summation order per graph is identical.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto single = session->predict({pool[i]}, "band_gap");
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0].value, batched[i].value) << "structure " << i;
    ASSERT_EQ(single[0].scores.size(), batched[i].scores.size());
    for (std::size_t j = 0; j < single[0].scores.size(); ++j) {
      EXPECT_EQ(single[0].scores[j], batched[i].scores[j]);
    }
  }
}

TEST(InferenceSession, RepeatCallsAreDeterministic) {
  // Dropout (p=0.2 in the head) must be inert in eval mode — identical
  // outputs across calls, no RNG advance.
  auto session =
      std::make_shared<InferenceSession>(make_task(33), session_options());
  const auto pool = sample_pool(3, 34);
  const auto a = session->predict(pool, "band_gap");
  const auto b = session->predict(pool, "band_gap");
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(InferenceSession, LeavesNoTapeAndRejectsUnknownTarget) {
  auto task = make_task(35);
  InferenceSession session(task, session_options());
  const auto pool = sample_pool(2, 36);
  const auto preds = session.predict(pool, "band_gap");
  ASSERT_EQ(preds.size(), 2u);
  for (const core::Tensor& p : task->parameters()) {
    EXPECT_EQ(p.impl()->grad_fn, nullptr);
  }
  EXPECT_THROW(session.predict(pool, "no_such_target"), matsci::Error);
}

TEST(InferenceSession, LoadsTrainingCheckpointWeights) {
  auto trained = make_task(41);
  optim::Adam opt = optim::make_adamw(trained->parameters(), 1e-3);
  const std::string path = temp_path("matsci_serve_ckpt.msck");
  train::save_training_checkpoint(path, *trained, opt, /*epoch=*/3);

  // Fresh task with a different seed: predictions differ until the
  // checkpoint is loaded, then match the trained task bit-exactly.
  auto fresh_task = make_task(99);
  InferenceSession trained_session(trained, session_options());
  InferenceSession fresh_session(fresh_task, session_options());
  const auto pool = sample_pool(3, 42);

  const auto want = trained_session.predict(pool, "band_gap");
  const auto before = fresh_session.predict(pool, "band_gap");
  EXPECT_NE(want[0].value, before[0].value);

  const nn::LoadReport report = fresh_session.load_checkpoint(path);
  EXPECT_GT(report.loaded, 0);
  EXPECT_EQ(report.missing, 0);
  const auto after = fresh_session.predict(pool, "band_gap");
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(after[i].value, want[i].value) << "structure " << i;
  }
  std::remove(path.c_str());
}

// --- BatchScheduler ---------------------------------------------------------

TEST(BatchScheduler, ConcurrentClientsAllReceiveExactResults) {
  auto session =
      std::make_shared<InferenceSession>(make_task(51), session_options());
  const auto pool = sample_pool(8, 52);

  // Reference answers from direct single-structure forwards.
  std::vector<float> reference;
  for (const auto& s : pool) {
    reference.push_back(session->predict({s}, "band_gap")[0].value);
  }

  SchedulerOptions opts;
  opts.max_batch_size = 16;
  opts.max_wait_us = 500;
  opts.num_workers = 4;
  BatchScheduler scheduler(session, opts);

  constexpr int kClients = 6;
  constexpr int kPerClient = 40;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t idx =
            static_cast<std::size_t>(c * kPerClient + i) % pool.size();
        try {
          PredictResult r =
              scheduler.submit(pool[idx], "band_gap").get();
          if (r.prediction.value != reference[idx]) ++mismatches;
          if (r.batch_size < 1) ++failures;
        } catch (...) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  scheduler.shutdown();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(scheduler.stats().requests_served(), kClients * kPerClient);
  EXPECT_GT(scheduler.stats().batches_executed(), 0);
  // Micro-batching engaged: fewer batches than requests.
  EXPECT_LT(scheduler.stats().batches_executed(),
            static_cast<std::int64_t>(kClients * kPerClient));
}

TEST(BatchScheduler, ShutdownDrainsInFlightWithoutDeadlock) {
  auto session =
      std::make_shared<InferenceSession>(make_task(61), session_options());
  const auto pool = sample_pool(4, 62);

  SchedulerOptions opts;
  opts.max_batch_size = 8;
  // A long flush window: shutdown must cut it short, not wait it out.
  opts.max_wait_us = 5'000'000;
  opts.num_workers = 2;

  std::vector<std::future<PredictResult>> futures;
  {
    BatchScheduler scheduler(session, opts);
    for (int i = 0; i < 12; ++i) {
      futures.push_back(
          scheduler.submit(pool[static_cast<std::size_t>(i) % pool.size()],
                           "band_gap"));
    }
    scheduler.shutdown();  // destructor would do the same
    EXPECT_THROW(scheduler.submit(pool[0], "band_gap"), matsci::Error);
  }
  // Every queued request was served, none dropped.
  for (auto& f : futures) {
    EXPECT_NO_THROW({
      PredictResult r = f.get();
      EXPECT_GE(r.batch_size, 1);
    });
  }
}

TEST(BatchScheduler, BoundedQueueShedsBurstsInsteadOfGrowing) {
  auto session =
      std::make_shared<InferenceSession>(make_task(63), session_options());
  const auto pool = sample_pool(4, 64);

  SchedulerOptions opts;
  opts.max_batch_size = 1;  // one forward per request: slowest drain
  opts.max_wait_us = 0;
  opts.num_workers = 1;
  opts.queue_capacity = 2;
  BatchScheduler scheduler(session, opts);

  // A burst far beyond queue capacity: submission is microseconds per
  // request while each forward is milliseconds, so the bounded queue
  // must reject part of the burst instead of growing without bound.
  std::vector<std::future<PredictResult>> accepted;
  std::int64_t shed = 0;
  for (int i = 0; i < 64; ++i) {
    PushResult r = scheduler.try_submit(
        pool[static_cast<std::size_t>(i) % pool.size()], "band_gap");
    if (r.status == PushStatus::kAccepted) {
      accepted.push_back(std::move(r.future));
    } else {
      EXPECT_EQ(r.status, PushStatus::kQueueFull);
      ++shed;
    }
    EXPECT_LE(scheduler.queue_depth(), opts.queue_capacity);
  }
  EXPECT_GT(shed, 0);
  EXPECT_EQ(scheduler.rejected_full(), shed);
  // Every accepted request is served; shed ones never got a future.
  for (auto& f : accepted) {
    EXPECT_NO_THROW(f.get());
  }
  scheduler.shutdown();
  EXPECT_EQ(scheduler.stats().requests_served(),
            static_cast<std::int64_t>(accepted.size()));
}

TEST(BatchScheduler, TrySubmitReportsShutdown) {
  auto session =
      std::make_shared<InferenceSession>(make_task(65), session_options());
  const auto pool = sample_pool(1, 66);
  BatchScheduler scheduler(session, {});
  scheduler.shutdown();
  PushResult r = scheduler.try_submit(pool[0], "band_gap");
  EXPECT_EQ(r.status, PushStatus::kShutdown);
  EXPECT_FALSE(r.future.valid());
}

TEST(BatchScheduler, UnknownTargetPropagatesThroughFuture) {
  auto session =
      std::make_shared<InferenceSession>(make_task(71), session_options());
  const auto pool = sample_pool(1, 72);
  SchedulerOptions opts;
  opts.max_batch_size = 4;
  opts.max_wait_us = 200;
  opts.num_workers = 1;
  BatchScheduler scheduler(session, opts);
  auto bad = scheduler.submit(pool[0], "no_such_target");
  EXPECT_THROW(bad.get(), matsci::Error);
  // The worker survives a poisoned batch and keeps serving.
  auto good = scheduler.submit(pool[0], "band_gap");
  EXPECT_NO_THROW(good.get());
  scheduler.shutdown();
}

// --- Multi-task head selection ----------------------------------------------

TEST(BatchScheduler, RoutesMixedTargetsToTheRightHeads) {
  RngEngine rng(81);
  auto encoder =
      std::make_shared<models::EGNN>(tiny_encoder_config(), rng);
  auto task = std::make_shared<tasks::MultiTaskModule>(
      encoder, tiny_head_config(), /*seed=*/82);
  task->add_regression(0, "band_gap", {2.0f, 1.5f}, "mp/band_gap");
  task->add_binary_classification(0, "stability", "mp/stability");

  auto session =
      std::make_shared<InferenceSession>(task, session_options());
  const auto pool = sample_pool(6, 83);

  std::vector<float> gap_ref;
  std::vector<std::int64_t> stab_ref;
  for (const auto& s : pool) {
    gap_ref.push_back(session->predict({s}, "mp/band_gap")[0].value);
    stab_ref.push_back(session->predict({s}, "mp/stability")[0].label);
  }

  SchedulerOptions opts;
  opts.max_batch_size = 4;
  opts.max_wait_us = 500;
  opts.num_workers = 2;
  BatchScheduler scheduler(session, opts);

  // Interleave the two targets so micro-batches must split by key.
  std::vector<std::future<PredictResult>> gap_futures, stab_futures;
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      gap_futures.push_back(scheduler.submit(pool[i], "mp/band_gap"));
      stab_futures.push_back(scheduler.submit(pool[i], "mp/stability"));
    }
  }
  for (std::size_t k = 0; k < gap_futures.size(); ++k) {
    const std::size_t i = k % pool.size();
    EXPECT_EQ(gap_futures[k].get().prediction.value, gap_ref[i]);
    EXPECT_EQ(stab_futures[k].get().prediction.label, stab_ref[i]);
  }
  scheduler.shutdown();
}

}  // namespace
}  // namespace matsci::serve
