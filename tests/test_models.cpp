#include <gtest/gtest.h>

#include <cmath>

#include "core/macros.hpp"
#include "core/ops.hpp"
#include "data/collate.hpp"
#include "models/egnn.hpp"
#include "models/output_head.hpp"
#include "sym/symop.hpp"
#include "test_util.hpp"

namespace matsci::models {
namespace {

using core::RngEngine;
using core::Tensor;

/// A small random point-cloud batch (complete-graph topology).
data::Batch make_batch(std::int64_t atoms, std::uint64_t seed,
                       std::int64_t num_graphs = 1) {
  RngEngine rng(seed);
  std::vector<data::StructureSample> samples;
  for (std::int64_t g = 0; g < num_graphs; ++g) {
    data::StructureSample s;
    for (std::int64_t i = 0; i < atoms; ++i) {
      s.species.push_back(1 + rng.next_int(8));
      s.positions.push_back(
          {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)});
    }
    s.scalar_targets["y"] = 0.0f;
    samples.push_back(std::move(s));
  }
  data::CollateOptions opts;
  opts.representation = data::Representation::kPointCloud;
  return data::collate(samples, opts);
}

EGNNConfig tiny_config() {
  EGNNConfig cfg;
  cfg.hidden_dim = 16;
  cfg.pos_hidden = 8;
  cfg.num_layers = 2;
  return cfg;
}

TEST(EGNN, OutputShape) {
  RngEngine rng(1);
  EGNN enc(tiny_config(), rng);
  data::Batch batch = make_batch(5, 2, /*num_graphs=*/3);
  Tensor emb = enc.encode(batch);
  EXPECT_EQ(emb.shape(), (core::Shape{3, 16}));
  EXPECT_EQ(enc.embedding_dim(), 16);
  Tensor nodes = enc.node_embeddings(batch);
  EXPECT_EQ(nodes.shape(), (core::Shape{15, 16}));
}

TEST(EGNN, TranslationInvariance) {
  RngEngine rng(3);
  EGNN enc(tiny_config(), rng);
  data::Batch batch = make_batch(6, 4);
  Tensor before = enc.encode(batch);
  // Shift every coordinate by a constant vector.
  for (std::int64_t i = 0; i < batch.coords.size(0); ++i) {
    batch.coords.set(i, 0, batch.coords.at(i, 0) + 3.7f);
    batch.coords.set(i, 1, batch.coords.at(i, 1) - 1.2f);
    batch.coords.set(i, 2, batch.coords.at(i, 2) + 0.4f);
  }
  Tensor after = enc.encode(batch);
  EXPECT_LT(matsci::testing::max_abs_diff(before, after), 1e-3);
}

TEST(EGNN, RotationAndReflectionInvariance) {
  RngEngine rng(5);
  EGNN enc(tiny_config(), rng);
  data::Batch batch = make_batch(6, 6);
  Tensor before = enc.encode(batch);

  for (const auto& op : {sym::rotation({0.3, -0.5, 0.8}, 1.1),
                         sym::reflection({1.0, 0.5, -0.25}),
                         sym::inversion()}) {
    data::Batch transformed = batch;
    transformed.coords = batch.coords.clone();
    for (std::int64_t i = 0; i < batch.coords.size(0); ++i) {
      const core::Vec3 p = {batch.coords.at(i, 0), batch.coords.at(i, 1),
                            batch.coords.at(i, 2)};
      const core::Vec3 q = core::matvec(op, p);
      transformed.coords.set(i, 0, static_cast<float>(q.x));
      transformed.coords.set(i, 1, static_cast<float>(q.y));
      transformed.coords.set(i, 2, static_cast<float>(q.z));
    }
    Tensor after = enc.encode(transformed);
    EXPECT_LT(matsci::testing::max_abs_diff(before, after), 1e-3);
  }
}

TEST(EGNN, PermutationInvarianceOfReadout) {
  RngEngine rng(7);
  EGNN enc(tiny_config(), rng);
  data::Batch batch = make_batch(5, 8);
  Tensor before = enc.encode(batch);

  // Reverse the atom order within the single graph.
  data::Batch permuted = batch;
  const std::int64_t n = batch.coords.size(0);
  permuted.coords = Tensor::empty({n, 3});
  permuted.species.assign(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t j = n - 1 - i;
    for (std::int64_t c = 0; c < 3; ++c) {
      permuted.coords.set(j, c, batch.coords.at(i, c));
    }
    permuted.species[static_cast<std::size_t>(j)] =
        batch.species[static_cast<std::size_t>(i)];
  }
  Tensor after = enc.encode(permuted);
  EXPECT_LT(matsci::testing::max_abs_diff(before, after), 2e-3);
}

TEST(EGNN, SizeExtensiveReadout) {
  // Two identical disconnected copies -> double the graph embedding of one
  // (sum pooling; complete graph per sample keeps copies independent).
  RngEngine rng(9);
  EGNN enc(tiny_config(), rng);
  data::Batch single = make_batch(4, 10, 1);

  std::vector<data::StructureSample> both;
  data::StructureSample s;
  for (std::int64_t i = 0; i < 4; ++i) {
    s.species.push_back(single.species[static_cast<std::size_t>(i)]);
    s.positions.push_back({single.coords.at(i, 0), single.coords.at(i, 1),
                           single.coords.at(i, 2)});
  }
  s.scalar_targets["y"] = 0.0f;
  both.push_back(s);
  both.push_back(s);
  data::CollateOptions copts;
  copts.representation = data::Representation::kPointCloud;
  data::Batch pair = data::collate(both, copts);

  Tensor e1 = enc.encode(single);
  Tensor e2 = enc.encode(pair);
  for (std::int64_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(e2.at(0, j), e1.at(0, j), 1e-3);
    EXPECT_NEAR(e2.at(1, j), e1.at(0, j), 1e-3);
  }
}

TEST(EGNN, GradientsReachAllParameters) {
  RngEngine rng(11);
  EGNN enc(tiny_config(), rng);
  data::Batch batch = make_batch(5, 12);
  core::sum(core::square(enc.encode(batch))).backward();
  for (const auto& [name, p] : enc.named_parameters()) {
    bool nonzero = false;
    core::Tensor t = p;
    for (const float g : t.grad_span()) {
      if (g != 0.0f) nonzero = true;
    }
    EXPECT_TRUE(nonzero) << "no gradient reached " << name;
  }
}

TEST(EGNN, SpeciesOutOfTableRejected) {
  RngEngine rng(13);
  EGNNConfig cfg = tiny_config();
  cfg.max_species = 4;
  EGNN enc(cfg, rng);
  data::Batch batch = make_batch(4, 14);
  batch.species[0] = 9;
  EXPECT_THROW(enc.encode(batch), matsci::Error);
}

TEST(EGNN, CoordUpdateToggle) {
  RngEngine rng(15);
  EGNNConfig with = tiny_config();
  EGNNConfig without = tiny_config();
  without.update_coords = false;
  EGNN a(with, rng);
  EGNN b(without, rng);
  // Different behaviours are expected; both must run and give finite output.
  data::Batch batch = make_batch(5, 16);
  const Tensor ea = a.encode(batch);
  const Tensor eb = b.encode(batch);
  for (const float v : ea.span()) EXPECT_TRUE(std::isfinite(v));
  for (const float v : eb.span()) EXPECT_TRUE(std::isfinite(v));
}

TEST(EGNN, ParameterCountMatchesArchitecture) {
  RngEngine rng(17);
  EGNNConfig cfg = tiny_config();
  EGNN enc(cfg, rng);
  const std::int64_t h = cfg.hidden_dim, ph = cfg.pos_hidden;
  const std::int64_t embedding = cfg.max_species * h;
  const std::int64_t edge = (2 * h + 1) * h + h + h * h + h;
  const std::int64_t coord = h * ph + ph + ph * 1 + 1;
  const std::int64_t node = (2 * h) * h + h + h * h + h;
  // The last layer carries no coordinate MLP (its x update is unread).
  EXPECT_EQ(enc.num_parameters(),
            embedding + cfg.num_layers * (edge + node) +
                (cfg.num_layers - 1) * coord);
}

TEST(OutputHead, ShapesAndProjection) {
  RngEngine rng(19);
  OutputHeadConfig cfg;
  cfg.hidden_dim = 8;
  cfg.num_blocks = 2;
  cfg.out_dim = 3;
  OutputHead head(/*in_dim=*/16, cfg, rng);
  Tensor emb = Tensor::randn({5, 16}, rng);
  Tensor out = head.forward(emb);
  EXPECT_EQ(out.shape(), (core::Shape{5, 3}));

  // Matching width skips the projection layer.
  OutputHead direct(/*in_dim=*/8, cfg, rng);
  bool has_proj = false;
  for (const auto& [name, _] : direct.named_parameters()) {
    if (name.find("input_proj") != std::string::npos) has_proj = true;
  }
  EXPECT_FALSE(has_proj);
}

TEST(OutputHead, DropoutOnlyInTraining) {
  RngEngine rng(21);
  OutputHeadConfig cfg;
  cfg.hidden_dim = 8;
  cfg.num_blocks = 3;
  cfg.dropout = 0.5f;
  OutputHead head(8, cfg, rng);
  Tensor emb = Tensor::randn({4, 8}, rng);
  head.train(false);
  Tensor a = head.forward(emb);
  Tensor b = head.forward(emb);
  EXPECT_LT(matsci::testing::max_abs_diff(a, b), 1e-7);
  head.train(true);
  Tensor c = head.forward(emb);
  Tensor d = head.forward(emb);
  EXPECT_GT(matsci::testing::max_abs_diff(c, d), 1e-6);
}

TEST(OutputHead, EvalRecursesIntoNestedDropout) {
  // eval() on the *root* must reach the Dropout modules buried inside
  // the head's residual blocks (root → block_i → dropout); a stale
  // training flag anywhere in that chain makes serving stochastic.
  RngEngine rng(22);
  OutputHeadConfig cfg;
  cfg.hidden_dim = 8;
  cfg.num_blocks = 3;
  cfg.dropout = 0.5f;
  OutputHead head(8, cfg, rng);
  EXPECT_TRUE(head.is_training());
  head.eval();
  EXPECT_FALSE(head.is_training());

  Tensor emb = Tensor::randn({4, 8}, rng);
  Tensor a = head.forward(emb);
  Tensor b = head.forward(emb);
  // Bit-exact, not approximately equal: eval-mode dropout is the
  // identity and must not advance its RNG stream.
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.at(i), b.at(i)) << "output " << i;
  }

  // Back to training: masks fire again, so outputs differ.
  head.train();
  Tensor c = head.forward(emb);
  Tensor d = head.forward(emb);
  EXPECT_GT(matsci::testing::max_abs_diff(c, d), 1e-6);
}

TEST(OutputHead, ZeroBlocksIsLinearReadout) {
  RngEngine rng(23);
  OutputHeadConfig cfg;
  cfg.hidden_dim = 8;
  cfg.num_blocks = 0;
  OutputHead head(8, cfg, rng);
  EXPECT_EQ(head.parameters().size(), 2u);  // readout weight + bias
}

}  // namespace
}  // namespace matsci::models
