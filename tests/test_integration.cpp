#include <gtest/gtest.h>

#include <filesystem>

#include "core/macros.hpp"
#include "data/dataloader.hpp"
#include "materials/carolina.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "nn/serialize.hpp"
#include "optim/adam.hpp"
#include "sym/synthetic_dataset.hpp"
#include "tasks/classification.hpp"
#include "tasks/multitask.hpp"
#include "tasks/regression.hpp"
#include "test_util.hpp"
#include "train/trainer.hpp"

namespace matsci {
namespace {

using core::RngEngine;

models::EGNNConfig tiny_encoder_config() {
  models::EGNNConfig cfg;
  cfg.hidden_dim = 24;
  cfg.pos_hidden = 8;
  cfg.num_layers = 2;
  return cfg;
}

models::OutputHeadConfig tiny_head_config() {
  models::OutputHeadConfig cfg;
  cfg.hidden_dim = 24;
  cfg.num_blocks = 1;
  cfg.dropout = 0.0f;
  return cfg;
}

/// The full pretrain → checkpoint → fine-tune pipeline of the paper, at
/// miniature scale: symmetry pretraining, encoder surgery into a property
/// regression task, and a check that the weights actually transferred.
TEST(Integration, PretrainCheckpointFinetuneFlow) {
  // 1. Pretrain a symmetry classifier for a couple of epochs.
  sym::SyntheticPointGroupDataset pretrain_ds(160, 5);
  data::DataLoaderOptions lo;
  lo.batch_size = 16;
  lo.seed = 1;
  lo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader pretrain_loader(pretrain_ds, lo);

  RngEngine rng(7);
  auto encoder =
      std::make_shared<models::EGNN>(tiny_encoder_config(), rng);
  tasks::ClassificationTask pretrain_task(encoder, "point_group", 32,
                                          tiny_head_config(), rng);
  optim::Adam pre_opt = optim::make_adamw(pretrain_task.parameters(), 2e-3);
  train::TrainerOptions topts;
  topts.max_epochs = 3;
  const auto pre_result =
      train::Trainer(topts).fit(pretrain_task, pretrain_loader, nullptr,
                                pre_opt);
  EXPECT_LT(pre_result.epochs.back().train.at("loss"),
            pre_result.epochs.front().train.at("loss"));

  // 2. Checkpoint the whole task; the encoder lives under "encoder.".
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "matsci_pretrain_test.msck")
          .string();
  nn::save_state_dict(nn::state_dict(pretrain_task), ckpt);

  // 3. Build a fine-tuning task with a fresh head, load the encoder only.
  RngEngine rng2(99);
  auto ft_encoder =
      std::make_shared<models::EGNN>(tiny_encoder_config(), rng2);
  tasks::ScalarRegressionTask ft_task(ft_encoder, "band_gap",
                                      tiny_head_config(), rng2,
                                      data::TargetStats{1.4f, 1.1f});
  const nn::StateDict sd = nn::load_state_dict_file(ckpt);
  const nn::LoadReport report = nn::load_into_module(
      *ft_encoder, sd, /*strict=*/false, /*prefix=*/"encoder");
  EXPECT_EQ(report.loaded,
            static_cast<std::int64_t>(ft_encoder->parameters().size()));
  EXPECT_EQ(report.missing, 0);

  // Encoder weights must now equal the pretrained ones.
  const auto pre_named = encoder->named_parameters();
  const auto ft_named = ft_encoder->named_parameters();
  for (std::size_t i = 0; i < pre_named.size(); ++i) {
    EXPECT_LT(matsci::testing::max_abs_diff(pre_named[i].second,
                                            ft_named[i].second),
              1e-9);
  }

  // 4. Fine-tune briefly (η/10 per the paper) — must run and stay finite.
  materials::MaterialsProjectDataset mp(64, 9);
  data::DataLoaderOptions flo;
  flo.batch_size = 16;
  flo.collate.radius.cutoff = 4.0;
  data::DataLoader ft_loader(mp, flo);
  optim::Adam ft_opt = optim::make_adamw(ft_task.parameters(), 2e-4);
  train::TrainerOptions ft_topts;
  ft_topts.max_epochs = 2;
  const auto ft_result =
      train::Trainer(ft_topts).fit(ft_task, ft_loader, nullptr, ft_opt);
  EXPECT_TRUE(std::isfinite(ft_result.epochs.back().train.at("loss")));
  std::remove(ckpt.c_str());
}

/// Miniature Table-1 setting: multi-task multi-dataset joint training
/// with a shared encoder over Materials Project + Carolina.
TEST(Integration, MultiTaskMultiDatasetTrainingRuns) {
  constexpr std::int64_t kMP = 0, kCMD = 1;
  materials::MaterialsProjectDataset mp_base(48, 11);
  materials::CarolinaMaterialsDataset cmd_base(48, 12);

  // Wrap with dataset ids.
  class Tagged : public data::StructureDataset {
   public:
    Tagged(const data::StructureDataset& inner, std::int64_t id)
        : inner_(&inner), id_(id) {}
    std::int64_t size() const override { return inner_->size(); }
    data::StructureSample get(std::int64_t i) const override {
      auto s = inner_->get(i);
      s.dataset_id = id_;
      return s;
    }
    std::string name() const override { return inner_->name(); }

   private:
    const data::StructureDataset* inner_;
    std::int64_t id_;
  };
  Tagged mp(mp_base, kMP), cmd(cmd_base, kCMD);

  RngEngine rng(21);
  auto encoder =
      std::make_shared<models::EGNN>(tiny_encoder_config(), rng);
  tasks::MultiTaskModule mt(encoder, tiny_head_config(), 33);
  mt.add_regression(kMP, "band_gap",
                    data::compute_target_stats(mp, "band_gap"), "mp/gap");
  mt.add_regression(kMP, "efermi",
                    data::compute_target_stats(mp, "efermi"), "mp/zeta");
  mt.add_regression(kMP, "formation_energy",
                    data::compute_target_stats(mp, "formation_energy"),
                    "mp/eform");
  mt.add_binary_classification(kMP, "stability", "mp/stability");
  mt.add_regression(kCMD, "formation_energy",
                    data::compute_target_stats(cmd, "formation_energy"),
                    "cmd/eform");

  data::DataLoaderOptions lo;
  lo.batch_size = 12;
  lo.collate.radius.cutoff = 4.0;
  data::DataLoader mp_loader(mp, lo), cmd_loader(cmd, lo);

  optim::Adam opt = optim::make_adamw(mt.parameters(), 2e-3);
  // Round-robin across datasets, two epochs.
  tasks::MetricAccumulator first_epoch, last_epoch;
  for (int epoch = 0; epoch < 2; ++epoch) {
    mp_loader.set_epoch(epoch);
    cmd_loader.set_epoch(epoch);
    auto& acc = epoch == 0 ? first_epoch : last_epoch;
    const std::int64_t steps =
        std::max(mp_loader.num_batches(), cmd_loader.num_batches());
    for (std::int64_t b = 0; b < steps; ++b) {
      for (data::DataLoader* loader : {&mp_loader, &cmd_loader}) {
        if (b >= loader->num_batches()) continue;
        opt.zero_grad();
        const tasks::TaskOutput out = mt.step(loader->batch(b));
        out.loss.backward();
        opt.step();
        acc.add(out);
      }
    }
  }
  // Joint loss decreased and every metric was exercised.
  EXPECT_LT(last_epoch.mean("loss"), first_epoch.mean("loss"));
  for (const char* key : {"mp/gap/mae", "mp/zeta/mae", "mp/eform/mae",
                          "mp/stability/bce", "cmd/eform/mae"}) {
    EXPECT_TRUE(last_epoch.has(key)) << key;
  }
}

/// Symmetry pretraining improves above chance quickly — the pretraining
/// objective is actually learnable by the encoder.
TEST(Integration, SymmetryPretrainingBeatsChance) {
  sym::SyntheticPointGroupOptions sopts;
  sopts.max_points = 20;  // keeps the complete graphs small (test budget)
  sym::SyntheticPointGroupDataset ds(320, 41, sopts);
  auto [train_ds, val_ds] = data::train_val_split(ds, 0.2, 2);
  data::DataLoaderOptions lo;
  lo.batch_size = 32;
  lo.collate.representation = data::Representation::kPointCloud;
  data::DataLoader train_loader(train_ds, lo), val_loader(val_ds, lo);

  RngEngine rng(55);
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 32;
  ecfg.pos_hidden = 16;
  ecfg.num_layers = 3;
  auto encoder = std::make_shared<models::EGNN>(ecfg, rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 32;
  hcfg.num_blocks = 2;
  hcfg.dropout = 0.0f;
  tasks::ClassificationTask task(encoder, "point_group", 32, hcfg, rng);
  optim::Adam opt = optim::make_adamw(task.parameters(), 3e-3);
  train::TrainerOptions topts;
  topts.max_epochs = 6;
  const auto result =
      train::Trainer(topts).fit(task, train_loader, &val_loader, opt);
  // Chance accuracy is 1/32 ≈ 3.1%; require clearly above.
  EXPECT_GT(result.epochs.back().val.at("accuracy"), 0.08);
  // And CE below the uniform-prediction value log(32) ≈ 3.47.
  EXPECT_LT(result.epochs.back().val.at("ce"), 3.3);
}

}  // namespace
}  // namespace matsci
