#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/macros.hpp"
#include "sym/point_group.hpp"
#include "sym/symop.hpp"
#include "sym/synthetic_dataset.hpp"

namespace matsci::sym {
namespace {

using core::Mat3;
using core::Vec3;

TEST(SymOp, RotationPreservesLengthAndAxis) {
  const Mat3 r = rotation({0, 0, 1}, M_PI / 3.0);
  EXPECT_TRUE(is_orthogonal(r));
  const Vec3 v = {1.0, 2.0, 3.0};
  EXPECT_NEAR(core::norm(core::matvec(r, v)), core::norm(v), 1e-12);
  // The axis is fixed.
  const Vec3 axis = {0, 0, 4.2};
  const Vec3 rotated = core::matvec(r, axis);
  EXPECT_NEAR(rotated.z, 4.2, 1e-12);
  EXPECT_NEAR(rotated.x, 0.0, 1e-12);
}

TEST(SymOp, RotationOrder) {
  // C4 applied four times = identity.
  const Mat3 c4 = rotation_z(4);
  Mat3 acc = core::identity3();
  for (int i = 0; i < 4; ++i) acc = core::matmul3(c4, acc);
  EXPECT_TRUE(ops_equal(acc, core::identity3()));
  Mat3 c4_2 = core::matmul3(c4, c4);
  EXPECT_FALSE(ops_equal(c4_2, core::identity3()));
}

TEST(SymOp, ReflectionIsInvolution) {
  const Mat3 m = reflection({1.0, 1.0, 0.0});
  EXPECT_TRUE(is_orthogonal(m));
  EXPECT_TRUE(ops_equal(core::matmul3(m, m), core::identity3()));
  EXPECT_NEAR(core::det3(m), -1.0, 1e-12);
}

TEST(SymOp, InversionProperties) {
  const Mat3 inv = inversion();
  EXPECT_NEAR(core::det3(inv), -1.0, 1e-12);
  EXPECT_TRUE(ops_equal(core::matmul3(inv, inv), core::identity3()));
  const Vec3 v = {1, -2, 3};
  const Vec3 iv = core::matvec(inv, v);
  EXPECT_NEAR(iv.x, -1.0, 1e-12);
  EXPECT_NEAR(iv.y, 2.0, 1e-12);
}

TEST(SymOp, ImproperRotationOrder) {
  // S4 has order 4; S4² = C2.
  const Mat3 s4 = improper_rotation_z(4);
  const Mat3 s4_2 = core::matmul3(s4, s4);
  EXPECT_TRUE(ops_equal(s4_2, rotation_z(2), 1e-9));
  Mat3 acc = core::identity3();
  for (int i = 0; i < 4; ++i) acc = core::matmul3(s4, acc);
  EXPECT_TRUE(ops_equal(acc, core::identity3()));
}

TEST(SymOp, CloseGroupCyclic) {
  const auto ops = close_group({rotation_z(5)});
  EXPECT_EQ(ops.size(), 5u);
}

TEST(SymOp, CloseGroupRejectsNonOrthogonal) {
  Mat3 bad = core::identity3();
  bad[0][0] = 2.0;
  EXPECT_THROW(close_group({bad}), matsci::Error);
}

TEST(SymOp, CloseGroupRejectsNonClosing) {
  // An irrational-angle rotation never closes.
  EXPECT_THROW(close_group({rotation({0, 0, 1}, 1.0)}), matsci::Error);
}

TEST(PointGroups, CatalogHas32Groups) {
  EXPECT_EQ(num_point_groups(), 32);
}

struct GroupOrderCase {
  const char* name;
  std::size_t order;
};

class PointGroupOrderTest : public ::testing::TestWithParam<GroupOrderCase> {};

TEST_P(PointGroupOrderTest, OrderMatchesTextbook) {
  const auto& [name, order] = GetParam();
  const PointGroup& g = point_group_by_name(name);
  EXPECT_EQ(g.order(), order) << name;
  // Every element orthogonal; identity present; closed under product.
  bool has_identity = false;
  for (const Mat3& op : g.ops) {
    EXPECT_TRUE(is_orthogonal(op, 1e-6));
    if (ops_equal(op, core::identity3(), 1e-6)) has_identity = true;
  }
  EXPECT_TRUE(has_identity);
  for (const Mat3& a : g.ops) {
    for (const Mat3& b : g.ops) {
      const Mat3 p = core::matmul3(a, b);
      bool found = false;
      for (const Mat3& c : g.ops) {
        if (ops_equal(p, c, 1e-6)) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << name << " not closed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGroups, PointGroupOrderTest,
    ::testing::Values(GroupOrderCase{"C1", 1}, GroupOrderCase{"Ci", 2},
                      GroupOrderCase{"Cs", 2}, GroupOrderCase{"C2", 2},
                      GroupOrderCase{"C3", 3}, GroupOrderCase{"C4", 4},
                      GroupOrderCase{"C6", 6}, GroupOrderCase{"C2v", 4},
                      GroupOrderCase{"C6v", 12}, GroupOrderCase{"C4h", 8},
                      GroupOrderCase{"D2", 4}, GroupOrderCase{"D6", 12},
                      GroupOrderCase{"D4h", 16}, GroupOrderCase{"D6h", 24},
                      GroupOrderCase{"D2d", 8}, GroupOrderCase{"D3d", 12},
                      GroupOrderCase{"S4", 4}, GroupOrderCase{"S6", 6},
                      GroupOrderCase{"T", 12}, GroupOrderCase{"Th", 24},
                      GroupOrderCase{"Td", 24}, GroupOrderCase{"O", 24},
                      GroupOrderCase{"Oh", 48}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(PointGroups, UnknownNameThrows) {
  EXPECT_THROW(point_group_by_name("K7"), matsci::Error);
}

TEST(SyntheticDataset, DeterministicInIndex) {
  SyntheticPointGroupDataset ds(100, 7);
  const auto a = ds.get(13);
  const auto b = ds.get(13);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_NEAR(core::norm(a.positions[i] - b.positions[i]), 0.0, 1e-12);
  }
  EXPECT_EQ(a.class_targets.at("point_group"),
            b.class_targets.at("point_group"));
}

TEST(SyntheticDataset, LabelsInRangeAndUniformish) {
  SyntheticPointGroupDataset ds(3200, 21);
  std::map<std::int64_t, int> counts;
  for (std::int64_t i = 0; i < 3200; ++i) {
    const std::int64_t y = ds.get(i).class_targets.at("point_group");
    ASSERT_GE(y, 0);
    ASSERT_LT(y, ds.num_classes());
    ++counts[y];
  }
  // All 32 classes appear, roughly uniformly (expected 100 each).
  EXPECT_EQ(static_cast<std::int64_t>(counts.size()), ds.num_classes());
  for (const auto& [_, c] : counts) {
    EXPECT_GT(c, 50);
    EXPECT_LT(c, 200);
  }
}

TEST(SyntheticDataset, PointCountBounded) {
  SyntheticPointGroupOptions opts;
  SyntheticPointGroupDataset ds(200, 3, opts);
  for (std::int64_t i = 0; i < 200; ++i) {
    const auto s = ds.get(i);
    EXPECT_GE(s.num_atoms(), 1);
    EXPECT_LE(s.num_atoms(), opts.max_points);
    EXPECT_FALSE(s.lattice.has_value());
    for (const std::int64_t z : s.species) EXPECT_EQ(z, 0);
  }
}

TEST(SyntheticDataset, GeneratedCloudRespectsGroupSymmetry) {
  // Without jitter or random orientation, the cloud must be invariant
  // (as a set) under every operation of its group.
  SyntheticPointGroupOptions opts;
  opts.jitter_sigma = 0.0;
  opts.random_orientation = false;
  core::RngEngine rng(99);
  const PointGroup& g = point_group_by_name("D4h");
  const auto sample =
      SyntheticPointGroupDataset::generate(g, 0, rng, opts);
  for (const Mat3& op : g.ops) {
    for (const Vec3& p : sample.positions) {
      const Vec3 image = core::matvec(op, p);
      double best = 1e9;
      for (const Vec3& q : sample.positions) {
        best = std::min(best, core::norm(image - q));
      }
      EXPECT_LT(best, 1e-6) << "orbit image missing under " << g.name;
    }
  }
}

TEST(SyntheticDataset, OutOfRangeIndexThrows) {
  SyntheticPointGroupDataset ds(10, 1);
  EXPECT_THROW(ds.get(-1), matsci::Error);
  EXPECT_THROW(ds.get(10), matsci::Error);
}

}  // namespace
}  // namespace matsci::sym
