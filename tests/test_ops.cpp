#include <gtest/gtest.h>

#include <cmath>

#include "core/macros.hpp"
#include "core/ops.hpp"

namespace matsci::core {
namespace {

TEST(Ops, AddForwardBroadcasts) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor row = Tensor::from_vector({10, 20, 30}, {3});
  Tensor col = Tensor::from_vector({100, 200}, {2, 1});
  Tensor s = Tensor::scalar(0.5f);

  Tensor ar = add(a, row);
  EXPECT_FLOAT_EQ(ar.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(ar.at(1, 2), 36.0f);
  Tensor ac = add(a, col);
  EXPECT_FLOAT_EQ(ac.at(0, 2), 103.0f);
  EXPECT_FLOAT_EQ(ac.at(1, 0), 204.0f);
  Tensor as = add(a, s);
  EXPECT_FLOAT_EQ(as.at(1, 1), 5.5f);
}

TEST(Ops, IncompatibleBroadcastThrows) {
  Tensor a = Tensor::zeros({2, 3});
  EXPECT_THROW(add(a, Tensor::zeros({2})), matsci::Error);
  EXPECT_THROW(add(a, Tensor::zeros({3, 2})), matsci::Error);
  EXPECT_THROW(add(a, Tensor::zeros({2, 2})), matsci::Error);
}

TEST(Ops, OperatorOverloads) {
  Tensor a = Tensor::from_vector({2, 4}, {2});
  Tensor b = Tensor::from_vector({1, 2}, {2});
  EXPECT_FLOAT_EQ((a + b).at(1), 6.0f);
  EXPECT_FLOAT_EQ((a - b).at(1), 2.0f);
  EXPECT_FLOAT_EQ((a * b).at(1), 8.0f);
  EXPECT_FLOAT_EQ((a / b).at(1), 2.0f);
  EXPECT_FLOAT_EQ((a * 3.0f).at(0), 6.0f);
  EXPECT_FLOAT_EQ((a + 1.0f).at(0), 3.0f);
  EXPECT_FLOAT_EQ((-a).at(0), -2.0f);
}

TEST(Ops, MatmulMatchesManual) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::from_vector({7, 8, 9, 10, 11, 12}, {3, 2});
  Tensor c = matmul(a, b);
  // Row 0: [1*7+2*9+3*11, 1*8+2*10+3*12] = [58, 64]
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
  EXPECT_THROW(matmul(a, a), matsci::Error);
}

TEST(Ops, ReductionValues) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_FLOAT_EQ(sum(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(mean(a).item(), 3.5f);
  Tensor s0 = sum_dim(a, 0, false);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0.at(0), 5.0f);
  Tensor s1 = sum_dim(a, 1, true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1.at(1), 15.0f);
  Tensor m1 = mean_dim(a, 1, true);
  EXPECT_FLOAT_EQ(m1.at(0), 2.0f);
}

TEST(Ops, ActivationValues) {
  Tensor x = Tensor::from_vector({-1.0f, 0.0f, 2.0f}, {3});
  Tensor r = relu(x);
  EXPECT_FLOAT_EQ(r.at(0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(2), 2.0f);
  Tensor s = sigmoid(Tensor::scalar(0.0f));
  EXPECT_FLOAT_EQ(s.item(), 0.5f);
  // SELU fixed point properties: selu(0) = 0.
  EXPECT_FLOAT_EQ(selu(Tensor::scalar(0.0f)).item(), 0.0f);
  // SiLU(x) = x * sigmoid(x).
  EXPECT_NEAR(silu(Tensor::scalar(1.0f)).item(), 1.0 / (1.0 + std::exp(-1.0)),
              1e-6);
}

TEST(Ops, ClampValues) {
  Tensor x = Tensor::from_vector({-5, 0, 5}, {3});
  Tensor c = clamp(x, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.at(0), -1.0f);
  EXPECT_FLOAT_EQ(c.at(1), 0.0f);
  EXPECT_FLOAT_EQ(c.at(2), 1.0f);
  EXPECT_THROW(clamp(x, 1.0f, -1.0f), matsci::Error);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  RngEngine rng(3);
  Tensor logits = Tensor::randn({5, 7}, rng, 0.0f, 4.0f);
  Tensor p = softmax_rows(logits);
  for (std::int64_t i = 0; i < 5; ++i) {
    double row = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) {
      EXPECT_GE(p.at(i, j), 0.0f);
      row += p.at(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxNumericallyStableAtLargeLogits) {
  Tensor logits = Tensor::from_vector({1000.0f, 1001.0f}, {1, 2});
  Tensor p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 1), 1.0 / (1.0 + std::exp(-1.0)), 1e-5);
}

TEST(Ops, CrossEntropyMatchesManual) {
  // Uniform logits over C classes -> loss = log(C).
  Tensor logits = Tensor::zeros({4, 5});
  const std::vector<std::int64_t> labels = {0, 1, 2, 3};
  EXPECT_NEAR(cross_entropy(logits, labels).item(), std::log(5.0), 1e-6);
  EXPECT_THROW(cross_entropy(logits, {0, 1, 2}), matsci::Error);
  EXPECT_THROW(cross_entropy(logits, {0, 1, 2, 7}), matsci::Error);
}

TEST(Ops, BceWithLogitsMatchesManual) {
  Tensor logits = Tensor::from_vector({0.0f}, {1});
  Tensor target = Tensor::from_vector({1.0f}, {1});
  EXPECT_NEAR(bce_with_logits(logits, target).item(), std::log(2.0), 1e-6);
  // Extreme logits stay finite.
  Tensor big = Tensor::from_vector({80.0f}, {1});
  EXPECT_TRUE(std::isfinite(bce_with_logits(big, target).item()));
}

TEST(Ops, LossValues) {
  Tensor p = Tensor::from_vector({1, 2, 3}, {3, 1});
  Tensor t = Tensor::from_vector({2, 2, 5}, {3, 1});
  EXPECT_NEAR(mse_loss(p, t).item(), (1.0 + 0.0 + 4.0) / 3.0, 1e-6);
  EXPECT_NEAR(l1_loss(p, t).item(), (1.0 + 0.0 + 2.0) / 3.0, 1e-6);
  // Huber: |d|<beta quadratic, else linear.
  EXPECT_NEAR(huber_loss(p, t, 1.0f).item(),
              (0.5 + 0.0 + (2.0 - 0.5)) / 3.0, 1e-6);
}

TEST(Ops, ArgmaxRows) {
  Tensor a = Tensor::from_vector({1, 5, 2, 9, 0, 3}, {2, 3});
  const auto idx = argmax_rows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, ConcatAndSliceRoundTrip) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::from_vector({5, 6}, {2, 1});
  Tensor cat = concat_cols({a, b});
  EXPECT_EQ(cat.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(cat.at(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(cat.at(1, 2), 6.0f);
  Tensor back = slice_cols(cat, 0, 2);
  EXPECT_FLOAT_EQ(back.at(1, 1), 4.0f);

  Tensor rows = concat_rows({a, a});
  EXPECT_EQ(rows.shape(), (Shape{4, 2}));
  EXPECT_FLOAT_EQ(slice_rows(rows, 2, 2).at(0, 0), 1.0f);
}

TEST(Ops, DropoutSemantics) {
  RngEngine rng(9);
  Tensor x = Tensor::ones({1000});
  // Eval mode / p = 0: identity.
  Tensor id = dropout(x, 0.5f, /*training=*/false, rng);
  EXPECT_FLOAT_EQ(id.at(0), 1.0f);
  Tensor id2 = dropout(x, 0.0f, /*training=*/true, rng);
  EXPECT_FLOAT_EQ(id2.at(17), 1.0f);

  // Training: kept units scaled by 1/(1-p); mean approximately preserved.
  Tensor d = dropout(x, 0.4f, /*training=*/true, rng);
  std::int64_t zeros = 0;
  double total = 0.0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    const float v = d.at(i);
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 1.0f / 0.6f) < 1e-6);
    if (v == 0.0f) ++zeros;
    total += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.4, 0.07);
  EXPECT_NEAR(total / 1000.0, 1.0, 0.1);
  EXPECT_THROW(dropout(x, 1.0f, true, rng), matsci::Error);
}

TEST(Ops, ReshapeValidation) {
  Tensor a = Tensor::zeros({2, 3});
  EXPECT_EQ(reshape(a, {6}).shape(), (Shape{6}));
  EXPECT_EQ(reshape(a, {3, 2}).shape(), (Shape{3, 2}));
  EXPECT_THROW(reshape(a, {4, 2}), matsci::Error);
}

TEST(Ops, TransposeValues) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor t = transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3.0f);
}

}  // namespace
}  // namespace matsci::core
