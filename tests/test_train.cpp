#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/macros.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "tasks/regression.hpp"
#include "test_util.hpp"
#include "train/ddp.hpp"
#include "train/logging.hpp"
#include "train/trainer.hpp"

namespace matsci::train {
namespace {

using core::RngEngine;

std::unique_ptr<tasks::ScalarRegressionTask> make_task(std::uint64_t seed,
                                                       float dropout = 0.0f) {
  RngEngine rng(seed);
  models::EGNNConfig ecfg;
  ecfg.hidden_dim = 16;
  ecfg.pos_hidden = 8;
  ecfg.num_layers = 2;
  auto enc = std::make_shared<models::EGNN>(ecfg, rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 16;
  hcfg.num_blocks = 1;
  hcfg.dropout = dropout;
  return std::make_unique<tasks::ScalarRegressionTask>(
      enc, "band_gap", hcfg, rng, data::TargetStats{1.4f, 1.1f});
}

data::DataLoaderOptions loader_opts(std::int64_t batch = 8) {
  data::DataLoaderOptions o;
  o.batch_size = batch;
  o.seed = 3;
  o.collate.radius.cutoff = 4.0;
  return o;
}

TEST(Trainer, LossDecreasesOnRegression) {
  materials::MaterialsProjectDataset ds(96, 21);
  auto [train_ds, val_ds] = data::train_val_split(ds, 0.25, 1);
  data::DataLoader train_loader(train_ds, loader_opts());
  data::DataLoader val_loader(val_ds, loader_opts());
  auto task = make_task(5);
  optim::Adam opt = optim::make_adamw(task->parameters(), 3e-3, 1e-4);
  TrainerOptions topts;
  topts.max_epochs = 5;
  Trainer trainer(topts);
  const FitResult result =
      trainer.fit(*task, train_loader, &val_loader, opt);
  ASSERT_EQ(result.epochs.size(), 5u);
  EXPECT_LT(result.epochs.back().train.at("loss"),
            0.7 * result.epochs.front().train.at("loss"));
  EXPECT_GT(result.total_steps, 0);
  EXPECT_GT(result.samples_per_second(), 0.0);
}

TEST(Trainer, EvaluateUsesEvalModeAndRestores) {
  materials::MaterialsProjectDataset ds(16, 22);
  data::DataLoader loader(ds, loader_opts());
  auto task = make_task(6, /*dropout=*/0.5f);
  task->train(true);
  const auto m1 = Trainer::evaluate(*task, loader);
  const auto m2 = Trainer::evaluate(*task, loader);
  EXPECT_DOUBLE_EQ(m1.at("mae"), m2.at("mae"));  // dropout disabled
  EXPECT_TRUE(task->is_training());              // mode restored
}

TEST(Trainer, EvaluateMaxBatchesTruncates) {
  materials::MaterialsProjectDataset ds(64, 23);
  data::DataLoader loader(ds, loader_opts(8));
  auto task = make_task(7);
  // Truncation changes the number of samples seen, not the validity.
  const auto full = Trainer::evaluate(*task, loader);
  const auto truncated = Trainer::evaluate(*task, loader, /*max_batches=*/1);
  EXPECT_TRUE(full.count("mae"));
  EXPECT_TRUE(truncated.count("mae"));
}

TEST(Trainer, StepValidationRecordedAtInterval) {
  materials::MaterialsProjectDataset ds(64, 24);
  auto [train_ds, val_ds] = data::train_val_split(ds, 0.25, 2);
  data::DataLoader train_loader(train_ds, loader_opts(8));
  data::DataLoader val_loader(val_ds, loader_opts(8));
  auto task = make_task(8);
  optim::Adam opt = optim::make_adamw(task->parameters(), 1e-3);
  TrainerOptions topts;
  topts.max_epochs = 2;
  topts.validate_every_steps = 3;
  Trainer trainer(topts);
  const FitResult result = trainer.fit(*task, train_loader, &val_loader, opt);
  ASSERT_FALSE(result.step_validation.empty());
  EXPECT_EQ(result.step_validation.front().first, 3);
  for (const auto& [step, metrics] : result.step_validation) {
    EXPECT_EQ(step % 3, 0);
    EXPECT_TRUE(metrics.count("loss"));
  }
}

TEST(Trainer, SchedulerAdvancesPerEpoch) {
  materials::MaterialsProjectDataset ds(32, 25);
  data::DataLoader train_loader(ds, loader_opts());
  auto task = make_task(9);
  optim::Adam opt = optim::make_adamw(task->parameters(), 1.0);
  optim::ExponentialDecay sched(opt, 1.0, 0.5);
  TrainerOptions topts;
  topts.max_epochs = 3;
  Trainer trainer(topts);
  const FitResult result = trainer.fit(*task, train_loader, nullptr, opt, &sched);
  EXPECT_NEAR(result.epochs[0].lr, 1.0, 1e-12);
  EXPECT_NEAR(result.epochs[1].lr, 0.5, 1e-12);
  EXPECT_NEAR(result.epochs[2].lr, 0.25, 1e-12);
}

TEST(Trainer, GradAccumulationMatchesManualAverage) {
  materials::MaterialsProjectDataset ds(16, 26);
  data::DataLoaderOptions lo = loader_opts(8);
  lo.shuffle = false;

  // Path A: accumulate over the 2 batches with the Trainer.
  auto task_a = make_task(11);
  {
    data::DataLoader loader(ds, lo);
    optim::SGD opt(task_a->parameters(), {.lr = 0.1});
    TrainerOptions topts;
    topts.max_epochs = 1;
    topts.accumulate_batches = 2;
    Trainer(topts).fit(*task_a, loader, nullptr, opt);
  }

  // Path B: manual averaged-gradient step.
  auto task_b = make_task(11);
  {
    data::DataLoader loader(ds, lo);
    optim::SGD opt(task_b->parameters(), {.lr = 0.1});
    opt.zero_grad();
    task_b->step(loader.batch(0)).loss.backward();
    task_b->step(loader.batch(1)).loss.backward();
    for (core::Tensor p : opt.params()) {
      for (float& g : p.grad_span()) g *= 0.5f;
    }
    opt.step();
  }

  const auto pa = task_a->parameters();
  const auto pb = task_b->parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(matsci::testing::max_abs_diff(pa[i], pb[i]), 1e-6);
  }
}

TEST(Ddp, FlattenUnflattenRoundTrip) {
  RngEngine rng(30);
  auto task = make_task(12);
  auto params = task->parameters();
  // Fill grads with a recognizable pattern.
  float v = 0.0f;
  for (core::Tensor p : params) {
    for (float& g : p.grad_span()) g = v += 1.0f;
  }
  const std::vector<float> flat = flatten_grads(params);
  EXPECT_EQ(static_cast<std::int64_t>(flat.size()),
            task->num_parameters());
  // Zero then restore.
  for (core::Tensor p : params) p.zero_grad();
  unflatten_grads(flat, params);
  EXPECT_FLOAT_EQ(params[0].grad_span()[0], 1.0f);
  const std::vector<float> again = flatten_grads(params);
  EXPECT_EQ(flat, again);
}

TEST(Ddp, TwoRankTrainingMatchesManualSynchronousReference) {
  materials::MaterialsProjectDataset ds(32, 27);
  const std::int64_t world = 2;

  // DDP path.
  DDPTrainer ddp;
  DDPOptions dopts;
  dopts.world_size = world;
  dopts.max_epochs = 1;
  std::vector<core::Tensor> ddp_params;
  std::mutex mu;
  auto factory = [&](std::int64_t rank, std::int64_t ws) {
    RankContext ctx;
    auto task = make_task(13);  // same seed on every rank
    data::DataLoaderOptions lo = loader_opts(4);
    lo.shuffle = false;
    lo.rank = rank;
    lo.world_size = ws;
    ctx.train_loader = std::make_unique<data::DataLoader>(ds, lo);
    ctx.optimizer = std::make_unique<optim::SGD>(
        task->parameters(), optim::SGDOptions{.lr = 0.05});
    if (rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      for (core::Tensor p : task->parameters()) ddp_params.push_back(p);
    }
    ctx.task = std::move(task);
    return ctx;
  };
  const DDPResult result = ddp.fit(factory, dopts);
  EXPECT_EQ(result.total_samples, 32.0);

  // Manual synchronous reference on one process.
  auto ref = make_task(13);
  optim::SGD opt(ref->parameters(), {.lr = 0.05});
  std::vector<std::unique_ptr<data::DataLoader>> loaders;
  for (std::int64_t r = 0; r < world; ++r) {
    data::DataLoaderOptions lo = loader_opts(4);
    lo.shuffle = false;
    lo.rank = r;
    lo.world_size = world;
    loaders.push_back(std::make_unique<data::DataLoader>(ds, lo));
  }
  const std::int64_t steps = loaders[0]->num_batches();
  for (std::int64_t b = 0; b < steps; ++b) {
    opt.zero_grad();
    for (std::int64_t r = 0; r < world; ++r) {
      ref->step(loaders[static_cast<std::size_t>(r)]->batch(b))
          .loss.backward();
    }
    for (core::Tensor p : opt.params()) {
      for (float& g : p.grad_span()) g /= static_cast<float>(world);
    }
    opt.step();
  }

  const auto pr = ref->parameters();
  ASSERT_EQ(ddp_params.size(), pr.size());
  for (std::size_t i = 0; i < pr.size(); ++i) {
    EXPECT_LT(matsci::testing::max_abs_diff(ddp_params[i], pr[i]), 1e-4)
        << "parameter " << i;
  }
}

TEST(Ddp, BroadcastSynchronizesDifferentInits) {
  materials::MaterialsProjectDataset ds(8, 28);
  DDPTrainer ddp;
  DDPOptions dopts;
  dopts.world_size = 2;
  dopts.max_epochs = 1;
  std::vector<double> final_first_weight(2, 0.0);
  auto factory = [&](std::int64_t rank, std::int64_t ws) {
    RankContext ctx;
    // Intentionally different seeds: broadcast must reconcile them.
    auto task = make_task(100 + static_cast<std::uint64_t>(rank));
    data::DataLoaderOptions lo = loader_opts(4);
    lo.shuffle = false;
    lo.rank = rank;
    lo.world_size = ws;
    ctx.train_loader = std::make_unique<data::DataLoader>(ds, lo);
    ctx.optimizer = std::make_unique<optim::SGD>(
        task->parameters(), optim::SGDOptions{.lr = 0.01});
    ctx.task = std::move(task);
    return ctx;
  };
  EXPECT_NO_THROW(ddp.fit(factory, dopts));
  (void)final_first_weight;
}

TEST(Logging, SeriesLastAndTable) {
  MetricsLogger logger;
  logger.log(1, "loss", 1.0);
  logger.log(2, "loss", 0.5);
  logger.log(2, "mae", 0.3);
  logger.log(5, {{"loss", 0.25}, {"mae", 0.2}});
  const auto series = logger.series("loss");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[1].first, 2);
  EXPECT_DOUBLE_EQ(series[2].second, 0.25);
  EXPECT_DOUBLE_EQ(logger.last("mae"), 0.2);
  EXPECT_THROW(logger.last("nope"), matsci::Error);
  const std::string table = logger.format_table({"loss", "mae"});
  EXPECT_NE(table.find("loss"), std::string::npos);
  EXPECT_NE(table.find("0.25000"), std::string::npos);
}

TEST(Logging, CsvWritesUnifiedHeader) {
  MetricsLogger logger;
  logger.log(0, "a", 1.0);
  logger.log(1, "b", 2.0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "matsci_log_test.csv")
          .string();
  logger.write_csv(path);
  std::ifstream is(path);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "step,a,b");
  std::string row0;
  std::getline(is, row0);
  EXPECT_EQ(row0, "0,1,");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace matsci::train
