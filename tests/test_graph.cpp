#include <gtest/gtest.h>

#include <set>

#include "core/macros.hpp"
#include "core/random.hpp"
#include "graph/graph.hpp"
#include "graph/radius_graph.hpp"

namespace matsci::graph {
namespace {

using core::Mat3;
using core::Vec3;

TEST(Graph, ValidateCatchesBadEdges) {
  Graph g;
  g.num_nodes = 3;
  g.src = {0, 1};
  g.dst = {1, 2};
  EXPECT_NO_THROW(g.validate());
  g.dst.push_back(5);
  g.src.push_back(0);
  EXPECT_THROW(g.validate(), matsci::Error);
  g.src.pop_back();
  EXPECT_THROW(g.validate(), matsci::Error);
}

TEST(Graph, InDegrees) {
  Graph g;
  g.num_nodes = 3;
  g.src = {0, 1, 2, 0};
  g.dst = {1, 2, 1, 2};
  const auto deg = g.in_degrees();
  EXPECT_EQ(deg[0], 0);
  EXPECT_EQ(deg[1], 2);
  EXPECT_EQ(deg[2], 2);
}

TEST(Graph, BatchGraphsOffsetsIndices) {
  Graph a;
  a.num_nodes = 2;
  a.src = {0, 1};
  a.dst = {1, 0};
  Graph b;
  b.num_nodes = 3;
  b.src = {0, 2};
  b.dst = {2, 0};
  BatchedGraph batch = batch_graphs({a, b});
  batch.validate();
  EXPECT_EQ(batch.num_nodes, 5);
  EXPECT_EQ(batch.num_graphs, 2);
  EXPECT_EQ(batch.num_edges(), 4);
  // b's edges offset by 2.
  EXPECT_EQ(batch.src[2], 2);
  EXPECT_EQ(batch.dst[2], 4);
  EXPECT_EQ(batch.node_graph[0], 0);
  EXPECT_EQ(batch.node_graph[2], 1);
  EXPECT_EQ(batch.graph_sizes[1], 3);
}

TEST(Graph, BatchEmptyList) {
  BatchedGraph batch = batch_graphs({});
  EXPECT_EQ(batch.num_nodes, 0);
  EXPECT_EQ(batch.num_graphs, 0);
}

TEST(RadiusGraph, BasicCutoffSemantics) {
  // Three collinear points spaced 1 apart: cutoff 1.5 links neighbors only.
  std::vector<Vec3> pts = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  RadiusGraphOptions opts;
  opts.cutoff = 1.5;
  Graph g = build_radius_graph(pts, opts);
  g.validate();
  std::set<std::pair<std::int64_t, std::int64_t>> edges;
  for (std::size_t e = 0; e < g.src.size(); ++e) {
    edges.insert({g.src[e], g.dst[e]});
  }
  EXPECT_TRUE(edges.count({0, 1}));
  EXPECT_TRUE(edges.count({1, 0}));
  EXPECT_TRUE(edges.count({1, 2}));
  EXPECT_TRUE(edges.count({2, 1}));
  EXPECT_FALSE(edges.count({0, 2}));
  EXPECT_FALSE(edges.count({2, 0}));
  EXPECT_FALSE(edges.count({0, 0}));
}

TEST(RadiusGraph, ConnectIsolatedFallback) {
  std::vector<Vec3> pts = {{0, 0, 0}, {10, 0, 0}};
  RadiusGraphOptions opts;
  opts.cutoff = 1.0;
  opts.connect_isolated = true;
  Graph g = build_radius_graph(pts, opts);
  EXPECT_EQ(g.num_edges(), 2);  // each links to its nearest

  opts.connect_isolated = false;
  Graph g2 = build_radius_graph(pts, opts);
  EXPECT_EQ(g2.num_edges(), 0);
}

TEST(RadiusGraph, MaxNeighborsKeepsNearest) {
  std::vector<Vec3> pts = {
      {0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}, {4, 0, 0}};
  RadiusGraphOptions opts;
  opts.cutoff = 10.0;
  opts.max_neighbors = 2;
  Graph g = build_radius_graph(pts, opts);
  // Node 0's kept neighbors must be nodes 1 and 2 (nearest two).
  std::set<std::int64_t> nbrs0;
  for (std::size_t e = 0; e < g.src.size(); ++e) {
    if (g.dst[e] == 0) nbrs0.insert(g.src[e]);
  }
  EXPECT_EQ(nbrs0, (std::set<std::int64_t>{1, 2}));
}

TEST(RadiusGraph, PeriodicMinimalImage) {
  // Two atoms near opposite faces of a 10 Å cube: PBC distance is 1 Å.
  Mat3 cell = core::mat3_rows({10, 0, 0}, {0, 10, 0}, {0, 0, 10});
  std::vector<Vec3> pts = {{0.5, 5, 5}, {9.5, 5, 5}};
  RadiusGraphOptions opts;
  opts.cutoff = 2.0;
  opts.connect_isolated = false;
  Graph no_pbc = build_radius_graph(pts, opts);
  EXPECT_EQ(no_pbc.num_edges(), 0);
  Graph with_pbc = build_radius_graph(pts, opts, cell);
  EXPECT_EQ(with_pbc.num_edges(), 2);
}

TEST(RadiusGraph, MinimalImageDeltaValues) {
  Mat3 cell = core::mat3_rows({10, 0, 0}, {0, 10, 0}, {0, 0, 10});
  Mat3 inv = core::inverse3(cell);
  Vec3 d = minimal_image_delta({0.5, 0, 0}, {9.5, 0, 0}, cell, inv);
  EXPECT_NEAR(d.x, -1.0, 1e-9);
  EXPECT_NEAR(d.y, 0.0, 1e-9);
  // Within half the cell, minimal image equals the plain difference.
  Vec3 d2 = minimal_image_delta({2, 3, 4}, {5, 3, 4}, cell, inv);
  EXPECT_NEAR(d2.x, 3.0, 1e-9);
}

TEST(RadiusGraph, EmptyAndSinglePoint) {
  RadiusGraphOptions opts;
  Graph g0 = build_radius_graph({}, opts);
  EXPECT_EQ(g0.num_nodes, 0);
  EXPECT_EQ(g0.num_edges(), 0);
  Graph g1 = build_radius_graph({Vec3{0, 0, 0}}, opts);
  EXPECT_EQ(g1.num_nodes, 1);
  EXPECT_EQ(g1.num_edges(), 0);
}

TEST(RadiusGraph, RejectsBadCutoff) {
  RadiusGraphOptions opts;
  opts.cutoff = 0.0;
  EXPECT_THROW(build_radius_graph({Vec3{0, 0, 0}}, opts), matsci::Error);
}

TEST(CompleteGraph, EdgeCountAndSelfLoops) {
  Graph g = build_complete_graph(4);
  EXPECT_EQ(g.num_edges(), 12);  // n(n-1)
  for (std::size_t e = 0; e < g.src.size(); ++e) {
    EXPECT_NE(g.src[e], g.dst[e]);
  }
  Graph gl = build_complete_graph(4, /*self_loops=*/true);
  EXPECT_EQ(gl.num_edges(), 16);
  EXPECT_EQ(build_complete_graph(0).num_edges(), 0);
  EXPECT_EQ(build_complete_graph(1).num_edges(), 0);
}

class RadiusGraphSymmetryTest : public ::testing::TestWithParam<int> {};

TEST_P(RadiusGraphSymmetryTest, EdgesComeInPairs) {
  // Property: the radius graph (without max_neighbors) is symmetric —
  // (i, j) present iff (j, i) present.
  core::RngEngine rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Vec3> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({rng.uniform(0, 6), rng.uniform(0, 6), rng.uniform(0, 6)});
  }
  RadiusGraphOptions opts;
  opts.cutoff = 2.5;
  opts.connect_isolated = false;
  Graph g = build_radius_graph(pts, opts);
  std::set<std::pair<std::int64_t, std::int64_t>> edges;
  for (std::size_t e = 0; e < g.src.size(); ++e) {
    edges.insert({g.src[e], g.dst[e]});
  }
  for (const auto& [s, d] : edges) {
    EXPECT_TRUE(edges.count({d, s}))
        << "edge (" << s << ", " << d << ") lacks its reverse";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadiusGraphSymmetryTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace matsci::graph
