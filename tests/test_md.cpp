#include <gtest/gtest.h>

#include <cmath>

#include "core/macros.hpp"
#include "materials/elements.hpp"
#include "materials/lips.hpp"
#include "materials/md.hpp"

namespace matsci::materials {
namespace {

Structure two_atom_cell(double separation) {
  Structure s;
  s.lattice = cubic_lattice(20.0);
  s.frac = {{0.5, 0.5, 0.5}, {0.5 + separation / 20.0, 0.5, 0.5}};
  s.species = {18, 18};  // Ar-Ar
  return s;
}

TEST(LJ, ParametersPhysical) {
  const LJParams p = lj_parameters(18, 18);
  EXPECT_GT(p.sigma, 0.0);
  EXPECT_GT(p.epsilon, 0.0);
  // Minimum at r = 2^{1/6} σ = sum of covalent radii.
  EXPECT_NEAR(p.sigma * std::pow(2.0, 1.0 / 6.0),
              2.0 * element(18).covalent_radius, 1e-9);
  // Electronegativity contrast deepens the well.
  EXPECT_GT(lj_parameters(3, 9).epsilon, lj_parameters(3, 3).epsilon);
}

TEST(MD, EnergyMinimumAtContactDistance) {
  const double r0 = 2.0 * element(18).covalent_radius;
  std::vector<core::Vec3> f;
  const double e_min = MDSimulator::energy_and_forces(two_atom_cell(r0), 8.0, f);
  const double e_closer =
      MDSimulator::energy_and_forces(two_atom_cell(r0 * 0.8), 8.0, f);
  const double e_farther =
      MDSimulator::energy_and_forces(two_atom_cell(r0 * 1.5), 8.0, f);
  EXPECT_LT(e_min, e_closer);
  EXPECT_LT(e_min, e_farther);
  EXPECT_LT(e_min, 0.0);
}

TEST(MD, ForceIsNegativeEnergyGradient) {
  // Central finite difference on atom 1's x coordinate.
  const double r = 2.4;
  const double h = 1e-5;
  std::vector<core::Vec3> forces;
  Structure s = two_atom_cell(r);
  MDSimulator::energy_and_forces(s, 8.0, forces);

  Structure sp = two_atom_cell(r + h);
  Structure sm = two_atom_cell(r - h);
  std::vector<core::Vec3> tmp;
  const double ep = MDSimulator::energy_and_forces(sp, 8.0, tmp);
  const double em = MDSimulator::energy_and_forces(sm, 8.0, tmp);
  const double numeric = -(ep - em) / (2.0 * h);
  EXPECT_NEAR(forces[1].x, numeric, 1e-4 * std::max(1.0, std::fabs(numeric)));
  // Newton's third law.
  EXPECT_NEAR(forces[0].x, -forces[1].x, 1e-12);
  EXPECT_NEAR(forces[0].y, 0.0, 1e-12);
}

TEST(MD, ForcesSumToZero) {
  // Momentum conservation: total LJ force vanishes in PBC.
  LiPSDataset lips(4, 1);
  const MDSnapshot& snap = lips.frame(2);
  core::Vec3 total{};
  for (const core::Vec3& f : snap.forces) total += f;
  EXPECT_NEAR(core::norm(total), 0.0, 1e-9);
}

TEST(MD, NveEnergyApproximatelyConserved) {
  MDOptions opts;
  opts.timestep = 0.5;
  opts.temperature = 100.0;
  opts.steps = 100;
  opts.snapshot_every = 10;
  opts.thermostat_every = 0;  // NVE
  MDSimulator sim(LiPSDataset::initial_structure(), opts, 7);
  const auto traj = sim.run();
  ASSERT_EQ(traj.size(), 10u);
  const double e0 = traj.front().potential_energy + traj.front().kinetic_energy;
  const double e1 = traj.back().potential_energy + traj.back().kinetic_energy;
  // Velocity Verlet drift should be small relative to the kinetic scale.
  EXPECT_NEAR(e1, e0, 0.15 * std::max(1.0, std::fabs(e0)));
}

TEST(MD, ThermostatHoldsTemperature) {
  MDOptions opts;
  opts.timestep = 1.0;
  opts.temperature = 400.0;
  opts.steps = 200;
  opts.snapshot_every = 200;
  opts.thermostat_every = 10;
  MDSimulator sim(LiPSDataset::initial_structure(), opts, 11);
  const auto traj = sim.run();
  ASSERT_EQ(traj.size(), 1u);
  const double n = static_cast<double>(traj[0].structure.num_atoms());
  const double t_final =
      2.0 * traj[0].kinetic_energy / (3.0 * n * 8.617333e-5);
  EXPECT_GT(t_final, 100.0);
  EXPECT_LT(t_final, 1200.0);
}

TEST(MD, DeterministicInSeed) {
  MDOptions opts;
  opts.steps = 40;
  opts.snapshot_every = 40;
  MDSimulator a(LiPSDataset::initial_structure(), opts, 5);
  MDSimulator b(LiPSDataset::initial_structure(), opts, 5);
  const auto ta = a.run();
  const auto tb = b.run();
  ASSERT_EQ(ta.size(), tb.size());
  EXPECT_DOUBLE_EQ(ta[0].potential_energy, tb[0].potential_energy);
}

TEST(MD, RejectsBadOptions) {
  MDOptions opts;
  opts.timestep = -1.0;
  EXPECT_THROW(MDSimulator(LiPSDataset::initial_structure(), opts, 1),
               matsci::Error);
}

// --- Cell-list neighbor search ----------------------------------------------

TEST(NeighborList, CellListBitExactAgainstScan) {
  // Supercell large enough for >= 3 bins per direction at this cutoff,
  // so the cell path (not the fallback) is exercised.
  const Structure sc = LiPSDataset::initial_structure().supercell(3, 3, 3);
  const double cutoff = 4.0;

  std::vector<core::Vec3> scan_forces;
  const double scan_energy =
      MDSimulator::energy_and_forces(sc, cutoff, scan_forces);

  LJForceProvider provider(cutoff);
  std::vector<core::Vec3> cell_forces;
  const double cell_energy = provider.energy_and_forces(sc, cell_forces);
  EXPECT_FALSE(provider.neighbor_list().used_fallback());

  // Bit-exact: identical contributing pairs, identical per-pair
  // arithmetic, identical (lexicographic) accumulation order.
  EXPECT_EQ(scan_energy, cell_energy);
  ASSERT_EQ(scan_forces.size(), cell_forces.size());
  for (std::size_t i = 0; i < scan_forces.size(); ++i) {
    EXPECT_EQ(scan_forces[i].x, cell_forces[i].x);
    EXPECT_EQ(scan_forces[i].y, cell_forces[i].y);
    EXPECT_EQ(scan_forces[i].z, cell_forces[i].z);
  }
}

TEST(NeighborList, FallsBackWhenCellTooSmall) {
  // A single 6.2 Å LiPS cell cannot host 3 bins of 6.0 + skin.
  const Structure s = LiPSDataset::initial_structure();
  LJForceProvider provider(6.0);
  std::vector<core::Vec3> cell_forces;
  const double cell_energy = provider.energy_and_forces(s, cell_forces);
  EXPECT_TRUE(provider.neighbor_list().used_fallback());

  std::vector<core::Vec3> scan_forces;
  const double scan_energy =
      MDSimulator::energy_and_forces(s, 6.0, scan_forces);
  EXPECT_EQ(scan_energy, cell_energy);
  for (std::size_t i = 0; i < scan_forces.size(); ++i) {
    EXPECT_EQ(scan_forces[i].x, cell_forces[i].x);
  }
}

TEST(NeighborList, RebuildsOnlyPastDisplacementThreshold) {
  Structure s = LiPSDataset::initial_structure().supercell(3, 3, 3);
  NeighborListOptions nlo;
  nlo.skin = 0.4;
  NeighborList nl(4.0, nlo);
  EXPECT_TRUE(nl.update(s));  // first touch builds
  EXPECT_EQ(nl.rebuilds(), 1);
  EXPECT_FALSE(nl.update(s));  // unchanged: cached list reused

  // Sub-threshold drift (< skin/2) keeps the cached list.
  const double cell = 6.2 * 3.0;
  Structure drifted = s;
  drifted.frac[0].x += 0.5 * (0.4 / 2.0) / cell;
  EXPECT_FALSE(nl.update(drifted));
  EXPECT_EQ(nl.rebuilds(), 1);

  // Past skin/2 the list is stale and must rebuild.
  Structure moved = s;
  moved.frac[0].x += 1.5 * (0.4 / 2.0) / cell;
  EXPECT_TRUE(nl.update(moved));
  EXPECT_EQ(nl.rebuilds(), 2);
}

TEST(MD, CellListTrajectoryBitExactVsScanTrajectory) {
  // Whole-trajectory equivalence: a provider with cells enabled and one
  // forced onto the O(N²) candidate scan integrate identically.
  MDOptions opts;
  opts.timestep = 1.0;
  opts.cutoff = 4.0;
  opts.steps = 10;
  opts.snapshot_every = 5;
  const Structure sc = LiPSDataset::initial_structure().supercell(2, 2, 2);

  MDSimulator with_cells(sc, opts, 9);  // default provider: cell list
  NeighborListOptions scan_opts;
  scan_opts.disable_cells = true;
  MDSimulator with_scan(
      sc, opts, 9, std::make_shared<LJForceProvider>(opts.cutoff, scan_opts));

  const auto ta = with_cells.run();
  const auto tb = with_scan.run();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t f = 0; f < ta.size(); ++f) {
    EXPECT_EQ(ta[f].potential_energy, tb[f].potential_energy);
    EXPECT_EQ(ta[f].kinetic_energy, tb[f].kinetic_energy);
    for (std::size_t i = 0; i < ta[f].forces.size(); ++i) {
      EXPECT_EQ(ta[f].forces[i].x, tb[f].forces[i].x);
    }
  }
}

TEST(MD, StepwiseApiMatchesRun) {
  // Driving the integrator externally (the TrajectoryScheduler contract)
  // reproduces run() exactly.
  MDOptions opts;
  opts.steps = 20;
  opts.snapshot_every = 10;
  const Structure s0 = LiPSDataset::initial_structure();

  MDSimulator whole(s0, opts, 3);
  const auto ref = whole.run();

  MDSimulator stepped(s0, opts, 3);
  LJForceProvider provider(opts.cutoff);
  stepped.prepare();
  std::vector<core::Vec3> forces;
  const double e0 = provider.energy_and_forces(stepped.structure(), forces);
  stepped.set_initial_forces(e0, forces);
  while (!stepped.done()) {
    stepped.begin_step();
    const double e = provider.energy_and_forces(stepped.structure(), forces);
    stepped.finish_step(e, forces);
  }
  const auto traj = stepped.take_snapshots();
  ASSERT_EQ(ref.size(), traj.size());
  for (std::size_t f = 0; f < ref.size(); ++f) {
    EXPECT_EQ(ref[f].potential_energy, traj[f].potential_energy);
    EXPECT_EQ(ref[f].kinetic_energy, traj[f].kinetic_energy);
  }
}

}  // namespace
}  // namespace matsci::materials
