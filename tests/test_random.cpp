#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/macros.hpp"
#include "core/random.hpp"

namespace matsci::core {
namespace {

TEST(Rng, DeterministicInSeed) {
  RngEngine a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  RngEngine a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  RngEngine rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMoments) {
  RngEngine rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sq / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  RngEngine rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
  // Shifted/scaled variant.
  double s2 = 0.0;
  for (int i = 0; i < n; ++i) s2 += rng.normal(3.0, 0.5);
  EXPECT_NEAR(s2 / n, 3.0, 0.02);
}

TEST(Rng, NextIntUnbiasedAndBounded) {
  RngEngine rng(17);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    const std::int64_t v = rng.next_int(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 7.0, 0.01);
  }
  EXPECT_THROW(rng.next_int(0), matsci::Error);
}

TEST(Rng, BernoulliRate) {
  RngEngine rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkIndependentAndDeterministic) {
  RngEngine parent(42);
  RngEngine c1 = parent.fork(1);
  RngEngine c2 = parent.fork(2);
  RngEngine c1_again = parent.fork(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  // Streams from different ids should not collide.
  RngEngine c1b = parent.fork(1);
  c1b.next_u64();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1b.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDoesNotPerturbParent) {
  RngEngine a(5), b(5);
  (void)a.fork(99);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  RngEngine rng(23);
  std::vector<std::int64_t> v(50);
  for (std::int64_t i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SampleWithoutReplacement) {
  RngEngine rng(29);
  const auto s = rng.sample_without_replacement(20, 8);
  EXPECT_EQ(s.size(), 8u);
  std::set<std::int64_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 8u);
  for (const std::int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
  EXPECT_EQ(rng.sample_without_replacement(5, 5).size(), 5u);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
  EXPECT_THROW(rng.sample_without_replacement(5, 6), matsci::Error);
}

}  // namespace
}  // namespace matsci::core
