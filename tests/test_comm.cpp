#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "comm/communicator.hpp"
#include "comm/perf_model.hpp"
#include "core/macros.hpp"

namespace matsci::comm {
namespace {

TEST(Communicator, SingleRankCollectivesAreNoOps) {
  run_ranks(1, [](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.world_size(), 1);
    std::vector<float> data = {1.0f, 2.0f};
    comm.allreduce_sum(data);
    EXPECT_FLOAT_EQ(data[0], 1.0f);
    comm.allreduce_mean(data);
    EXPECT_FLOAT_EQ(data[1], 2.0f);
    comm.broadcast(data, 0);
    comm.barrier();
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar_sum(3.5), 3.5);
  });
}

class CommWorldTest : public ::testing::TestWithParam<int> {};

TEST_P(CommWorldTest, AllreduceSumAcrossRanks) {
  const std::int64_t world = GetParam();
  run_ranks(world, [world](Communicator& comm) {
    std::vector<float> data = {static_cast<float>(comm.rank() + 1), 10.0f};
    comm.allreduce_sum(data);
    // Sum of 1..world in slot 0, world*10 in slot 1.
    EXPECT_FLOAT_EQ(data[0], static_cast<float>(world * (world + 1) / 2));
    EXPECT_FLOAT_EQ(data[1], static_cast<float>(world * 10));
  });
}

TEST_P(CommWorldTest, AllreduceMeanAcrossRanks) {
  const std::int64_t world = GetParam();
  run_ranks(world, [world](Communicator& comm) {
    std::vector<float> data = {static_cast<float>(comm.rank())};
    comm.allreduce_mean(data);
    EXPECT_NEAR(data[0], static_cast<double>(world - 1) / 2.0, 1e-5);
  });
}

TEST_P(CommWorldTest, BroadcastFromEveryRoot) {
  const std::int64_t world = GetParam();
  for (std::int64_t root = 0; root < world; ++root) {
    run_ranks(world, [root](Communicator& comm) {
      std::vector<float> data = {static_cast<float>(comm.rank() * 100)};
      comm.broadcast(data, root);
      EXPECT_FLOAT_EQ(data[0], static_cast<float>(root * 100));
    });
  }
}

TEST_P(CommWorldTest, ScalarMax) {
  const std::int64_t world = GetParam();
  run_ranks(world, [world](Communicator& comm) {
    const double m =
        comm.allreduce_scalar_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(m, static_cast<double>(world - 1));
  });
}

TEST_P(CommWorldTest, RepeatedCollectivesStayConsistent) {
  const std::int64_t world = GetParam();
  run_ranks(world, [world](Communicator& comm) {
    for (int round = 0; round < 8; ++round) {
      std::vector<float> data = {static_cast<float>(round)};
      comm.allreduce_sum(data);
      EXPECT_FLOAT_EQ(data[0], static_cast<float>(round * world));
      comm.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, CommWorldTest, ::testing::Values(2, 3, 4, 8));

TEST(Communicator, BarrierOrdersPhases) {
  // All ranks must see the phase-1 writes of every other rank after the
  // barrier.
  const std::int64_t world = 4;
  std::vector<std::atomic<int>> flags(world);
  for (auto& f : flags) f = 0;
  run_ranks(world, [&flags](Communicator& comm) {
    flags[static_cast<std::size_t>(comm.rank())] = 1;
    comm.barrier();
    for (std::int64_t r = 0; r < comm.world_size(); ++r) {
      EXPECT_EQ(flags[static_cast<std::size_t>(r)].load(), 1);
    }
  });
}

TEST(Communicator, RankExceptionPropagates) {
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& comm) {
                           // Both ranks throw so no barrier deadlocks.
                           MATSCI_CHECK(false, "rank failure");
                           (void)comm;
                         }),
               matsci::Error);
}

TEST(Communicator, Validation) {
  EXPECT_THROW(ProcessGroup(0), matsci::Error);
  auto group = std::make_shared<ProcessGroup>(2);
  EXPECT_THROW(Communicator(group, 2), matsci::Error);
  EXPECT_THROW(Communicator(nullptr, 0), matsci::Error);
}

TEST(PerfModel, SingleRankHasNoCommCost) {
  PerfModel model;
  EXPECT_DOUBLE_EQ(model.allreduce_seconds(1, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(model.step_seconds(1, 0.1, 1 << 20), 0.1);
}

TEST(PerfModel, AllreduceGrowsWithRanksAndBytes) {
  PerfModel model;
  const std::int64_t mb = 1 << 20;
  EXPECT_LT(model.allreduce_seconds(4, mb), model.allreduce_seconds(64, mb));
  EXPECT_LT(model.allreduce_seconds(16, mb),
            model.allreduce_seconds(16, 64 * mb));
}

TEST(PerfModel, ThroughputNearLinearWhenComputeBound) {
  // The paper's Fig. 2 regime: per-step compute far exceeds allreduce.
  PerfModel model;
  const double compute = 0.5;           // 500 ms per step per rank
  const std::int64_t grad_bytes = 4 << 20;  // ~1M params
  const double t1 = model.throughput(1, 32, compute, grad_bytes);
  const double t512 = model.throughput(512, 32, compute, grad_bytes);
  EXPECT_GT(t512 / t1, 0.9 * 512.0 / 1.0);  // ≥ 90% parallel efficiency
  EXPECT_GT(model.scaling_efficiency(512, 32, compute, grad_bytes), 0.9);
}

TEST(PerfModel, EfficiencyDegradesWhenCommBound) {
  PerfModel model;
  // Tiny compute + huge gradients: communication dominates.
  const double eff =
      model.scaling_efficiency(512, 1, 1e-5, 512LL << 20);
  EXPECT_LT(eff, 0.5);
}

TEST(PerfModel, EpochTimeScalesInversely) {
  PerfModel model;
  const double e16 = model.epoch_seconds(16, 32, 0.2, 4 << 20, 2'000'000);
  const double e256 = model.epoch_seconds(256, 32, 0.2, 4 << 20, 2'000'000);
  EXPECT_GT(e16 / e256, 10.0);  // near-linear reduction
}

TEST(PerfModel, Validation) {
  PerfModel model;
  EXPECT_THROW(model.allreduce_seconds(0, 10), matsci::Error);
  EXPECT_THROW(model.step_seconds(2, -1.0, 10), matsci::Error);
  ClusterConfig bad;
  bad.ranks_per_node = 0;
  EXPECT_THROW(PerfModel{bad}, matsci::Error);
}

}  // namespace
}  // namespace matsci::comm
