#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/macros.hpp"
#include "core/random.hpp"
#include "embed/cluster_metrics.hpp"
#include "embed/kdtree.hpp"
#include "embed/pca.hpp"
#include "embed/umap.hpp"

namespace matsci::embed {
namespace {

using core::RngEngine;
using core::Tensor;

/// Brute-force reference kNN.
std::vector<std::int64_t> brute_knn(const Tensor& pts, std::int64_t query,
                                    std::int64_t k) {
  const std::int64_t n = pts.size(0), d = pts.size(1);
  std::vector<std::pair<double, std::int64_t>> dist;
  for (std::int64_t j = 0; j < n; ++j) {
    if (j == query) continue;
    double acc = 0.0;
    for (std::int64_t c = 0; c < d; ++c) {
      const double diff =
          static_cast<double>(pts.at(query, c)) - pts.at(j, c);
      acc += diff * diff;
    }
    dist.emplace_back(acc, j);
  }
  std::sort(dist.begin(), dist.end());
  std::vector<std::int64_t> out;
  for (std::int64_t i = 0; i < k; ++i) out.push_back(dist[static_cast<std::size_t>(i)].second);
  return out;
}

struct KnnCase {
  std::int64_t n, d, k;
};

class KdTreeVsBruteTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(KdTreeVsBruteTest, MatchesBruteForce) {
  const auto [n, d, k] = GetParam();
  RngEngine rng(static_cast<std::uint64_t>(n * 1000 + d * 10 + k));
  Tensor pts = Tensor::randn({n, d}, rng);
  KDTree tree(pts);
  for (const std::int64_t q : {std::int64_t{0}, n / 2, n - 1}) {
    const KnnResult res = tree.knn_of_point(q, k);
    const auto ref = brute_knn(pts, q, k);
    ASSERT_EQ(res.indices.size(), static_cast<std::size_t>(k));
    // Distances sorted ascending and sets equal (ties are measure-zero).
    for (std::size_t i = 1; i < res.distances.size(); ++i) {
      EXPECT_LE(res.distances[i - 1], res.distances[i]);
    }
    std::vector<std::int64_t> got = res.indices;
    std::vector<std::int64_t> want = ref;
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KdTreeVsBruteTest,
    ::testing::Values(KnnCase{20, 2, 3}, KnnCase{50, 3, 5},
                      KnnCase{100, 8, 10}, KnnCase{64, 16, 7},
                      KnnCase{128, 4, 1}, KnnCase{33, 5, 32}));

TEST(KdTree, Validation) {
  RngEngine rng(1);
  Tensor pts = Tensor::randn({10, 3}, rng);
  KDTree tree(pts);
  EXPECT_EQ(tree.size(), 10);
  EXPECT_EQ(tree.dim(), 3);
  std::vector<float> q = {0.0f, 0.0f};
  EXPECT_THROW(tree.knn(q, 2), matsci::Error);  // wrong dim
  std::vector<float> q3 = {0.0f, 0.0f, 0.0f};
  EXPECT_THROW(tree.knn(q3, 11), matsci::Error);  // k too large
  EXPECT_THROW(tree.knn_of_point(10, 2), matsci::Error);
  EXPECT_NO_THROW(tree.knn(q3, 10));  // without exclusion all 10 available
}

TEST(Pca, RecoversDominantDirection) {
  // Points along (1, 1, 0)/√2 with small isotropic noise.
  RngEngine rng(2);
  std::vector<float> data;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.normal(0.0, 5.0);
    data.push_back(static_cast<float>(t / std::sqrt(2.0) + rng.normal(0, 0.1)));
    data.push_back(static_cast<float>(t / std::sqrt(2.0) + rng.normal(0, 0.1)));
    data.push_back(static_cast<float>(rng.normal(0, 0.1)));
  }
  Tensor x = Tensor::from_vector(std::move(data), {200, 3});
  const PCAResult result = pca(x, 2);
  // First component parallel to (1,1,0)/√2.
  const double c0 = result.components.at(0, 0);
  const double c1 = result.components.at(0, 1);
  const double c2 = result.components.at(0, 2);
  EXPECT_NEAR(std::fabs(c0), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(std::fabs(c1), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(c2, 0.0, 0.05);
  // Eigenvalues descending.
  EXPECT_GT(result.explained_variance[0], result.explained_variance[1]);
  // Components orthonormal.
  double dot = 0.0, norm0 = 0.0;
  for (int c = 0; c < 3; ++c) {
    dot += result.components.at(0, c) * result.components.at(1, c);
    norm0 += result.components.at(0, c) * result.components.at(0, c);
  }
  EXPECT_NEAR(dot, 0.0, 1e-3);
  EXPECT_NEAR(norm0, 1.0, 1e-3);
  EXPECT_EQ(result.projected.shape(), (core::Shape{200, 2}));
}

TEST(Pca, Validation) {
  RngEngine rng(3);
  Tensor x = Tensor::randn({10, 3}, rng);
  EXPECT_THROW(pca(x, 4), matsci::Error);
  EXPECT_THROW(pca(x, 0), matsci::Error);
  EXPECT_THROW(pca(Tensor::randn({1, 3}, rng), 1), matsci::Error);
}

TEST(Umap, FitAbMatchesReferenceForDefaultMinDist) {
  // Reference values from umap-learn's find_ab_params (spread = 1):
  // min_dist 0.1 -> a ≈ 1.577, b ≈ 0.895; min_dist 0.01 -> a ≈ 1.93.
  const auto [a, b] = fit_ab(0.1);
  EXPECT_NEAR(a, 1.577, 0.1);
  EXPECT_NEAR(b, 0.895, 0.05);
  // Smaller min_dist -> sharper curve -> larger a.
  const auto [a2, b2] = fit_ab(0.01);
  EXPECT_NEAR(a2, 1.93, 0.15);
  EXPECT_GT(a2, a);
  (void)b2;
}

Tensor two_cluster_data(std::int64_t per_cluster, std::int64_t dim,
                        double separation, std::uint64_t seed) {
  RngEngine rng(seed);
  std::vector<float> data;
  for (std::int64_t i = 0; i < 2 * per_cluster; ++i) {
    const double offset = i < per_cluster ? 0.0 : separation;
    for (std::int64_t c = 0; c < dim; ++c) {
      data.push_back(
          static_cast<float>(rng.normal(c == 0 ? offset : 0.0, 1.0)));
    }
  }
  return Tensor::from_vector(std::move(data), {2 * per_cluster, dim});
}

TEST(Umap, SeparatedClustersStaySeparated) {
  const std::int64_t per = 40;
  Tensor x = two_cluster_data(per, 8, 25.0, 5);
  UMAPOptions opts;
  opts.n_neighbors = 10;
  opts.n_epochs = 100;
  opts.seed = 7;
  const UMAPResult result = umap(x, opts);
  EXPECT_EQ(result.embedding.shape(), (core::Shape{2 * per, 2}));

  std::vector<std::int64_t> labels(static_cast<std::size_t>(2 * per), 0);
  for (std::int64_t i = per; i < 2 * per; ++i) {
    labels[static_cast<std::size_t>(i)] = 1;
  }
  const auto stats = cluster_stats(result.embedding, labels);
  ASSERT_EQ(stats.size(), 2u);
  const auto dist = centroid_distances(stats);
  // Clusters separated by more than their combined spreads.
  EXPECT_GT(dist[0][1], stats[0].mean_radius + stats[1].mean_radius);
  // And silhouette is strongly positive.
  EXPECT_GT(silhouette_score(result.embedding, labels), 0.4);
}

TEST(Umap, DeterministicInSeed) {
  Tensor x = two_cluster_data(20, 6, 10.0, 9);
  UMAPOptions opts;
  opts.n_neighbors = 8;
  opts.n_epochs = 40;
  opts.seed = 11;
  const UMAPResult a = umap(x, opts);
  const UMAPResult b = umap(x, opts);
  for (std::int64_t i = 0; i < a.embedding.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.embedding.at(i), b.embedding.at(i));
  }
}

TEST(Umap, PreservesLocalNeighborhoods) {
  Tensor x = two_cluster_data(30, 10, 20.0, 13);
  UMAPOptions opts;
  opts.n_neighbors = 10;
  opts.n_epochs = 120;
  const UMAPResult result = umap(x, opts);
  // At minimum, low-dim neighbors should overlap high-dim neighbors far
  // better than chance (10/59 ≈ 0.17 at random).
  EXPECT_GT(knn_preservation(x, result.embedding, 10), 0.4);
}

TEST(Umap, Validation) {
  RngEngine rng(15);
  EXPECT_THROW(umap(Tensor::randn({3, 4}, rng)), matsci::Error);
  Tensor ok = Tensor::randn({10, 4}, rng);
  UMAPOptions opts;
  opts.n_neighbors = 1;
  EXPECT_THROW(umap(ok, opts), matsci::Error);
}

TEST(ClusterMetrics, StatsAndIsolation) {
  // Three tight clusters at (0,0), (10,0), (10.5, 0): the last two nearly
  // merge; the first is isolated.
  std::vector<float> data;
  std::vector<std::int64_t> labels;
  RngEngine rng(17);
  const std::vector<std::pair<double, std::int64_t>> centers = {
      {0.0, 0}, {10.0, 1}, {10.5, 2}};
  for (const auto& [cx, label] : centers) {
    for (int i = 0; i < 20; ++i) {
      data.push_back(static_cast<float>(cx + rng.normal(0, 0.1)));
      data.push_back(static_cast<float>(rng.normal(0, 0.1)));
      labels.push_back(label);
    }
  }
  Tensor pts = Tensor::from_vector(std::move(data), {60, 2});
  const auto stats = cluster_stats(pts, labels);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].count, 20);
  EXPECT_NEAR(stats[0].centroid[0], 0.0, 0.1);
  EXPECT_NEAR(stats[1].centroid[0], 10.0, 0.1);
  EXPECT_LT(stats[0].mean_radius, 0.5);

  // Label 0 is far from both others; labels 1 and 2 almost touch.
  EXPECT_GT(isolation_score(stats, 0), 5.0);
  EXPECT_LT(isolation_score(stats, 1), 5.0);

  // Overlap: cluster 1's neighbors include cluster 2 points but not 0's.
  EXPECT_GT(neighbor_overlap(pts, labels, 1, 2, 25), 0.5);
  EXPECT_EQ(neighbor_overlap(pts, labels, 0, 1, 5), 0.0);
}

TEST(ClusterMetrics, SilhouetteOrdersConfigurations) {
  Tensor tight = two_cluster_data(20, 4, 30.0, 19);
  Tensor loose = two_cluster_data(20, 4, 2.0, 19);
  std::vector<std::int64_t> labels(40, 0);
  for (int i = 20; i < 40; ++i) labels[static_cast<std::size_t>(i)] = 1;
  EXPECT_GT(silhouette_score(tight, labels), silhouette_score(loose, labels));
}

TEST(ClusterMetrics, Validation) {
  RngEngine rng(21);
  Tensor pts = Tensor::randn({10, 2}, rng);
  std::vector<std::int64_t> labels(10, 0);
  EXPECT_THROW(silhouette_score(pts, labels), matsci::Error);  // one cluster
  labels.resize(5);
  EXPECT_THROW(cluster_stats(pts, labels), matsci::Error);
}

}  // namespace
}  // namespace matsci::embed
