#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/macros.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "test_util.hpp"

namespace matsci::nn {
namespace {

using core::RngEngine;
using core::Tensor;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, StreamRoundTrip) {
  RngEngine rng(1);
  MLP mlp({4, 8, 2}, Act::kSiLU, rng);
  StateDict sd = state_dict(mlp);
  ASSERT_EQ(sd.size(), 4u);

  std::stringstream ss;
  write_state_dict(sd, ss);
  StateDict loaded = read_state_dict(ss);
  ASSERT_EQ(loaded.size(), sd.size());
  for (const auto& [name, t] : sd) {
    ASSERT_TRUE(loaded.count(name)) << name;
    EXPECT_EQ(loaded.at(name).shape(), t.shape());
    EXPECT_LT(matsci::testing::max_abs_diff(loaded.at(name), t), 1e-9);
  }
}

TEST(Serialize, FileRoundTrip) {
  RngEngine rng(2);
  MLP mlp({3, 3}, Act::kReLU, rng);
  const std::string path = temp_path("matsci_ckpt_test.msck");
  save_state_dict(state_dict(mlp), path);
  StateDict loaded = load_state_dict_file(path);
  EXPECT_EQ(loaded.size(), 2u);
  std::remove(path.c_str());
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream ss;
  ss << "NOTACKPT";
  EXPECT_THROW(read_state_dict(ss), matsci::Error);
}

TEST(Serialize, TruncatedStreamRejected) {
  RngEngine rng(3);
  MLP mlp({4, 4}, Act::kSiLU, rng);
  std::stringstream ss;
  write_state_dict(state_dict(mlp), ss);
  std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_state_dict(truncated), matsci::Error);
}

TEST(Serialize, StrictLoadRestoresExactly) {
  RngEngine r1(4), r2(5);
  MLP a({4, 6, 2}, Act::kSELU, r1);
  MLP b({4, 6, 2}, Act::kSELU, r2);
  const LoadReport report = load_into_module(b, state_dict(a));
  EXPECT_EQ(report.loaded, 4);
  EXPECT_EQ(report.missing, 0);
  EXPECT_EQ(report.skipped, 0);
  auto pa = a.parameters();
  auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(matsci::testing::max_abs_diff(pa[i], pb[i]), 1e-9);
  }
}

TEST(Serialize, StrictLoadRejectsMissingKeys) {
  RngEngine rng(6);
  MLP a({4, 2}, Act::kSiLU, rng);
  MLP bigger({4, 6, 2}, Act::kSiLU, rng);
  EXPECT_THROW(load_into_module(bigger, state_dict(a)), matsci::Error);
  // Extra keys also rejected in strict mode.
  EXPECT_THROW(load_into_module(a, state_dict(bigger)), matsci::Error);
}

TEST(Serialize, NonStrictSkipsAndCounts) {
  RngEngine rng(7);
  MLP a({4, 2}, Act::kSiLU, rng);
  MLP bigger({4, 6, 2}, Act::kSiLU, rng);
  const LoadReport report =
      load_into_module(bigger, state_dict(a), /*strict=*/false);
  // layer0.weight shape differs (4x2 vs 4x6): skipped; layer1.* missing.
  EXPECT_EQ(report.loaded, 0);
  EXPECT_GT(report.missing + report.skipped, 0);
}

TEST(Serialize, PrefixFilteredLoad) {
  // Simulate the fine-tuning flow: a checkpoint of a task whose encoder
  // lives under the "encoder." prefix, loaded into a bare encoder module.
  RngEngine rng(8);
  MLP encoder({4, 4}, Act::kSiLU, rng);
  StateDict sd;
  for (const auto& [name, t] : state_dict(encoder)) {
    sd["encoder." + name] = t;
  }
  sd["head.weight"] = core::Tensor::zeros({4, 1});

  RngEngine rng2(9);
  MLP fresh({4, 4}, Act::kSiLU, rng2);
  const LoadReport report =
      load_into_module(fresh, sd, /*strict=*/false, /*prefix=*/"encoder");
  EXPECT_EQ(report.loaded, 2);
  EXPECT_LT(matsci::testing::max_abs_diff(fresh.parameters()[0],
                                          encoder.parameters()[0]),
            1e-9);
}

TEST(Serialize, ShapeMismatchStrictThrows) {
  RngEngine rng(10);
  MLP a({4, 4}, Act::kSiLU, rng);
  StateDict sd = state_dict(a);
  sd["layer0.weight"] = Tensor::zeros({2, 2});
  MLP b({4, 4}, Act::kSiLU, rng);
  EXPECT_THROW(load_into_module(b, sd), matsci::Error);
}

TEST(Serialize, StateDictIsDetachedCopy) {
  RngEngine rng(11);
  MLP a({3, 3}, Act::kSiLU, rng);
  StateDict sd = state_dict(a);
  const float before = sd.at("layer0.weight").at(0);
  a.parameters()[0].set(0, before + 42.0f);
  EXPECT_FLOAT_EQ(sd.at("layer0.weight").at(0), before);
  EXPECT_FALSE(sd.at("layer0.weight").requires_grad());
}

}  // namespace
}  // namespace matsci::nn
