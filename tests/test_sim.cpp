// Tests for the src/sim subsystem: ML-potential MD through the serving
// stack, lockstep wave scheduling, the uncertainty gate + label buffer,
// and the active-learning fine-tune/hot-swap cycle. Label `sim` so the
// suite runs under TSan/ASan in the CI matrix (scripts/ci_matrix.sh).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/macros.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/vec3.hpp"
#include "materials/lips.hpp"
#include "materials/property_oracle.hpp"
#include "models/egnn.hpp"
#include "nn/serialize.hpp"
#include "serve/frontend/frontend.hpp"
#include "sim/sim.hpp"
#include "tasks/energy_force.hpp"

namespace matsci::sim {
namespace {

using serve::frontend::ServeFrontend;

constexpr double kCollateCutoff = 4.5;

/// Dispatch jobs are long-running pool tasks (one slot each while a
/// model is deployed), so tests that deploy several models need enough
/// pool slots for every scheduler's workers or requests would starve.
void ensure_pool(std::int64_t threads) {
  if (core::parallel::num_threads() < threads) {
    core::parallel::set_num_threads(threads);
  }
}

models::EGNNConfig tiny_encoder_config() {
  models::EGNNConfig cfg;
  cfg.hidden_dim = 16;
  cfg.pos_hidden = 8;
  cfg.num_layers = 2;
  return cfg;
}

std::shared_ptr<tasks::EnergyForceTask> make_potential_task(
    std::uint64_t seed) {
  core::RngEngine rng(seed);
  auto encoder = std::make_shared<models::EGNN>(tiny_encoder_config(), rng);
  models::OutputHeadConfig hcfg;
  hcfg.hidden_dim = 16;
  hcfg.num_blocks = 2;
  hcfg.dropout = 0.0f;
  return std::make_shared<tasks::EnergyForceTask>(
      encoder, "energy", hcfg, rng, data::TargetStats{0.0f, 1.0f});
}

std::shared_ptr<serve::InferenceSession> make_session(
    const std::shared_ptr<tasks::Task>& task) {
  serve::InferenceSessionOptions opts;
  opts.collate.radius.cutoff = kCollateCutoff;
  return std::make_shared<serve::InferenceSession>(task, opts);
}

serve::SchedulerOptions wave_scheduler_options() {
  serve::SchedulerOptions opts;
  opts.max_batch_size = 16;
  opts.max_wait_us = 500;
  // One long-running dispatch job per member keeps small pools (down to
  // one thread per deployed model) free of dispatcher starvation.
  opts.num_workers = 1;
  return opts;
}

/// Deploy `seeds.size()` untrained ensemble members and return their
/// registry names. Untrained weights are fine for dynamics tests: the
/// autograd forces are exact gradients of the predicted energy
/// regardless of training.
std::vector<std::string> deploy_ensemble(
    ServeFrontend& fe, const std::vector<std::uint64_t>& seeds) {
  std::vector<std::string> names;
  for (std::size_t m = 0; m < seeds.size(); ++m) {
    const std::string name = "pot/" + std::to_string(m);
    fe.deploy(name, 1, make_session(make_potential_task(seeds[m])),
              wave_scheduler_options());
    names.push_back(name);
  }
  return names;
}

ServedPotentialOptions backend_options(std::vector<std::string> members) {
  ServedPotentialOptions opts;
  opts.members = std::move(members);
  return opts;
}

materials::MDOptions short_md_options(std::int64_t steps) {
  materials::MDOptions opts;
  opts.timestep = 0.25;
  opts.temperature = 50.0;
  opts.steps = steps;
  opts.snapshot_every = steps;
  opts.thermostat_every = 0;
  return opts;
}

TEST(LocalBackend, MatchesDirectProviderEvaluation) {
  auto provider = std::make_shared<materials::LJForceProvider>(6.0);
  LocalForceBackend backend(
      std::make_shared<materials::LJForceProvider>(6.0));
  const materials::Structure s = materials::LiPSDataset::initial_structure();

  std::vector<core::Vec3> direct;
  const double energy = provider->energy_and_forces(s, direct);
  const auto evals = backend.evaluate({&s});
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_EQ(evals[0].energy, energy);
  ASSERT_EQ(evals[0].forces.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(evals[0].forces[i].x, direct[i].x);
  }
  EXPECT_EQ(evals[0].max_force_std, 0.0);
}

TEST(MLPotential, ServedForcesMatchTaskPredictForces) {
  // The served "forces" target must hand back exactly what the task's
  // autograd path computes — value packs the total energy, scores the
  // per-atom force components.
  ServeFrontend fe;
  auto task = make_potential_task(31);
  fe.deploy("pot/0", 1, make_session(task), wave_scheduler_options());
  MLPotential pot(fe, backend_options({"pot/0"}));

  const materials::Structure s = materials::LiPSDataset::initial_structure();
  std::vector<core::Vec3> forces;
  const double energy = pot.energy_and_forces(s, forces);

  // Reference through the raw session (same collate, same weights).
  auto session = make_session(task);
  const auto preds =
      session->predict({s.to_sample()}, tasks::EnergyForceTask::kForcesTarget);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(energy, static_cast<double>(preds[0].value));
  ASSERT_EQ(preds[0].scores.size(), forces.size() * 3);
  for (std::size_t i = 0; i < forces.size(); ++i) {
    EXPECT_EQ(forces[i].x, static_cast<double>(preds[0].scores[3 * i]));
    EXPECT_EQ(forces[i].y, static_cast<double>(preds[0].scores[3 * i + 1]));
    EXPECT_EQ(forces[i].z, static_cast<double>(preds[0].scores[3 * i + 2]));
  }
  // Single member: zero committee disagreement.
  EXPECT_EQ(pot.last_eval().max_force_std, 0.0);
}

TEST(MLPotential, ForceIsNegativeGradientOfServedEnergy) {
  // Finite-difference check through the full ensemble path. The model
  // is fp32, so the central difference carries rounding noise of order
  // eps(E)/h — tolerances are scaled accordingly.
  ensure_pool(4);
  ServeFrontend fe;
  MLPotential pot(fe, backend_options(deploy_ensemble(fe, {31, 32})));

  materials::Structure s = materials::LiPSDataset::initial_structure();
  std::vector<core::Vec3> forces;
  pot.energy_and_forces(s, forces);

  const double h = 1e-3;
  const double cell = 6.2;
  for (const std::int64_t atom : {0, 7}) {
    materials::Structure sp = s;
    sp.frac[static_cast<std::size_t>(atom)].x += h / cell;
    materials::Structure sm = s;
    sm.frac[static_cast<std::size_t>(atom)].x -= h / cell;
    std::vector<core::Vec3> tmp;
    const double ep = pot.energy_and_forces(sp, tmp);
    const double em = pot.energy_and_forces(sm, tmp);
    const double numeric = -(ep - em) / (2.0 * h);
    const double predicted = forces[static_cast<std::size_t>(atom)].x;
    EXPECT_NEAR(predicted, numeric,
                5e-3 + 0.05 * std::fabs(predicted))
        << "atom " << atom;
  }
}

TEST(MLPotential, NveEnergyDriftBounded) {
  // NVE dynamics on the served potential: predicted forces are exact
  // gradients of the predicted energy, so total energy must be
  // approximately conserved even for an untrained model.
  ensure_pool(4);
  ServeFrontend fe;
  auto pot = std::make_shared<MLPotential>(
      fe, backend_options(deploy_ensemble(fe, {31, 32})));

  materials::MDOptions opts = short_md_options(40);
  opts.snapshot_every = 10;
  materials::MDSimulator sim(materials::LiPSDataset::initial_structure(),
                             opts, 7, pot);
  const auto traj = sim.run();
  ASSERT_EQ(traj.size(), 4u);
  const double e0 =
      traj.front().potential_energy + traj.front().kinetic_energy;
  const double e1 = traj.back().potential_energy + traj.back().kinetic_energy;
  EXPECT_NEAR(e1, e0, 0.15 * std::max(1.0, std::fabs(e0)));
}

TEST(UncertaintyGate, CountsAndThreshold) {
  UncertaintyGateOptions opts;
  opts.force_std_threshold = 0.1;
  UncertaintyGate gate(opts);

  ForceEval calm;
  calm.max_force_std = 0.05;
  ForceEval uncertain;
  uncertain.max_force_std = 0.5;

  EXPECT_FALSE(gate.should_label(calm));
  EXPECT_TRUE(gate.should_label(uncertain));
  EXPECT_FALSE(gate.should_label(calm));
  EXPECT_EQ(gate.seen(), 3);
  EXPECT_EQ(gate.gated(), 1);
  EXPECT_NEAR(gate.gate_rate(), 1.0 / 3.0, 1e-12);
}

TEST(LabelBuffer, FifoEvictionAtCapacity) {
  LabelBufferOptions opts;
  opts.capacity = 3;
  LabelBuffer buf(opts);
  for (std::int64_t i = 0; i < 5; ++i) {
    data::StructureSample s;
    s.species = {i};
    s.positions = {{0.0, 0.0, 0.0}};
    buf.add(s);
  }
  EXPECT_EQ(buf.size(), 3);
  EXPECT_EQ(buf.total_added(), 5);
  // Ring after 5 adds at capacity 3: slots hold {3, 4, 2}.
  std::vector<std::int64_t> kept;
  for (std::int64_t i = 0; i < buf.size(); ++i) {
    kept.push_back(buf.get(i).species[0]);
  }
  EXPECT_EQ(kept, (std::vector<std::int64_t>{3, 4, 2}));
}

/// Run `num_traj` LiPS trajectories through a fresh frontend + ensemble
/// and return each trajectory's final (potential energy, positions).
struct ScheduledRunResult {
  std::vector<double> final_energies;
  std::vector<std::vector<core::Vec3>> final_frac;
  std::int64_t frames = 0;
};

ScheduledRunResult run_scheduled(std::int64_t num_traj, std::int64_t steps,
                                 std::int64_t wave_size,
                                 const std::vector<std::uint64_t>& seeds) {
  ServeFrontend fe;
  auto backend = std::make_shared<ServedForceBackend>(
      fe, backend_options(deploy_ensemble(fe, seeds)));

  std::vector<std::shared_ptr<materials::MDSimulator>> trajs;
  for (std::int64_t t = 0; t < num_traj; ++t) {
    trajs.push_back(std::make_shared<materials::MDSimulator>(
        materials::LiPSDataset::initial_structure(), short_md_options(steps),
        100 + static_cast<std::uint64_t>(t)));
  }
  TrajectorySchedulerOptions sopts;
  sopts.wave_size = wave_size;
  TrajectoryScheduler scheduler(trajs, backend, sopts);
  ScheduledRunResult out;
  out.frames = scheduler.run();
  for (const auto& t : trajs) {
    out.final_energies.push_back(t->potential_energy());
    out.final_frac.push_back(t->structure().frac);
  }
  return out;
}

void expect_same_result(const ScheduledRunResult& got,
                        const ScheduledRunResult& ref,
                        const std::string& label) {
  EXPECT_EQ(got.frames, ref.frames) << label;
  ASSERT_EQ(got.final_energies.size(), ref.final_energies.size());
  for (std::size_t t = 0; t < ref.final_energies.size(); ++t) {
    EXPECT_EQ(got.final_energies[t], ref.final_energies[t])
        << label << " traj=" << t;
    const auto& fa = got.final_frac[t];
    const auto& fb = ref.final_frac[t];
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
      EXPECT_EQ(fa[i].x, fb[i].x);
      EXPECT_EQ(fa[i].y, fb[i].y);
      EXPECT_EQ(fa[i].z, fb[i].z);
    }
  }
}

TEST(TrajectoryScheduler, DeterministicAcrossWaveSizesAndThreadCounts) {
  // The scale contract: N trajectories advanced in lockstep waves give
  // bit-identical dynamics no matter how the waves are chunked or how
  // many pool threads serve them (per-graph compute is independent and
  // kernels are thread-count bit-exact). A deployed model pins one pool
  // slot for its dispatcher, so the thread-count sweep — which goes all
  // the way down to a single pool thread — runs a one-member committee;
  // the wave-size sweep runs the two-member committee.
  ensure_pool(4);
  const std::int64_t num_traj = 4;
  const std::int64_t steps = 5;
  const std::int64_t default_threads = core::parallel::num_threads();
  const std::vector<std::uint64_t> one_member{31};
  const std::vector<std::uint64_t> two_members{31, 32};

  const ScheduledRunResult ref1 =
      run_scheduled(num_traj, steps, 2, one_member);
  EXPECT_EQ(ref1.frames, num_traj * steps);
  for (const std::int64_t threads : {1, 2, 8}) {
    core::parallel::set_num_threads(threads);
    const ScheduledRunResult got =
        run_scheduled(num_traj, steps, 2, one_member);
    core::parallel::set_num_threads(default_threads);
    expect_same_result(got, ref1, "threads=" + std::to_string(threads));
  }

  const ScheduledRunResult ref2 =
      run_scheduled(num_traj, steps, 2, two_members);
  EXPECT_EQ(ref2.frames, num_traj * steps);
  for (const std::int64_t wave : {1, 4, 0}) {
    const ScheduledRunResult got =
        run_scheduled(num_traj, steps, wave, two_members);
    expect_same_result(got, ref2, "wave=" + std::to_string(wave));
  }
}

TEST(TrajectoryScheduler, LocalBackendDeterministicAtOneTwoEightThreads) {
  // Same lockstep contract on the in-process LJ backend, where the pool
  // holds no dispatcher jobs at all and a single thread is the true
  // serial baseline.
  const std::int64_t default_threads = core::parallel::num_threads();
  auto run_local = [](std::int64_t wave_size) {
    auto backend = std::make_shared<LocalForceBackend>(
        std::make_shared<materials::LJForceProvider>(6.0));
    std::vector<std::shared_ptr<materials::MDSimulator>> trajs;
    for (std::int64_t t = 0; t < 4; ++t) {
      trajs.push_back(std::make_shared<materials::MDSimulator>(
          materials::LiPSDataset::initial_structure(), short_md_options(5),
          100 + static_cast<std::uint64_t>(t)));
    }
    TrajectorySchedulerOptions sopts;
    sopts.wave_size = wave_size;
    TrajectoryScheduler scheduler(trajs, backend, sopts);
    ScheduledRunResult out;
    out.frames = scheduler.run();
    for (const auto& t : trajs) {
      out.final_energies.push_back(t->potential_energy());
      out.final_frac.push_back(t->structure().frac);
    }
    return out;
  };

  const ScheduledRunResult ref = run_local(2);
  for (const std::int64_t threads : {1, 2, 8}) {
    for (const std::int64_t wave : {1, 2, 0}) {
      core::parallel::set_num_threads(threads);
      const ScheduledRunResult got = run_local(wave);
      core::parallel::set_num_threads(default_threads);
      expect_same_result(got, ref,
                         "local threads=" + std::to_string(threads) +
                             " wave=" + std::to_string(wave));
    }
  }
}

TEST(TrajectoryScheduler, WaveModeBitExactVsSequentialMDRuns) {
  // Batched wave scheduling must not change the physics: each
  // trajectory integrated alone through MDSimulator::run() + MLPotential
  // matches its waved counterpart bit-for-bit.
  const std::int64_t num_traj = 3;
  const std::int64_t steps = 4;

  ensure_pool(4);
  ServeFrontend fe;
  const auto members = deploy_ensemble(fe, {31, 32});

  std::vector<double> sequential_energies;
  for (std::int64_t t = 0; t < num_traj; ++t) {
    auto pot =
        std::make_shared<MLPotential>(fe, backend_options(members));
    materials::MDSimulator sim(materials::LiPSDataset::initial_structure(),
                               short_md_options(steps),
                               100 + static_cast<std::uint64_t>(t), pot);
    sim.run();
    sequential_energies.push_back(sim.potential_energy());
  }

  auto backend =
      std::make_shared<ServedForceBackend>(fe, backend_options(members));
  std::vector<std::shared_ptr<materials::MDSimulator>> trajs;
  for (std::int64_t t = 0; t < num_traj; ++t) {
    trajs.push_back(std::make_shared<materials::MDSimulator>(
        materials::LiPSDataset::initial_structure(), short_md_options(steps),
        100 + static_cast<std::uint64_t>(t)));
  }
  TrajectoryScheduler scheduler(trajs, backend, {});
  scheduler.run();
  for (std::int64_t t = 0; t < num_traj; ++t) {
    EXPECT_EQ(trajs[static_cast<std::size_t>(t)]->potential_energy(),
              sequential_energies[static_cast<std::size_t>(t)])
        << "traj " << t;
  }
}

TEST(ActiveLearning, FinetunesAndHotSwapsMidWaveWithZeroLoss) {
  ensure_pool(4);
  ServeFrontend fe;
  std::vector<EnsembleMemberSpec> members;
  const std::vector<std::uint64_t> seeds{31, 32};
  for (std::size_t m = 0; m < seeds.size(); ++m) {
    EnsembleMemberSpec spec;
    spec.name = "pot/" + std::to_string(m);
    spec.task = make_potential_task(seeds[m]);
    const std::uint64_t seed = seeds[m];
    spec.make_serving_task = [seed]() { return make_potential_task(seed); };
    // Deploy an independent snapshot so the training copy can be
    // fine-tuned while the deployed instance serves.
    auto serving = make_potential_task(seed);
    nn::load_into_module(*serving, nn::state_dict(*spec.task));
    fe.deploy(spec.name, 1, make_session(serving), wave_scheduler_options());
    members.push_back(std::move(spec));
  }

  materials::PropertyOracle oracle(5);
  ActiveLearningOptions alo;
  alo.gate.force_std_threshold = 0.0;  // untrained members disagree: gate all
  alo.min_labels = 4;
  alo.max_finetunes = 1;
  alo.finetune_epochs = 1;
  alo.batch_size = 4;
  alo.collate.radius.cutoff = kCollateCutoff;
  alo.scheduler = wave_scheduler_options();
  ActiveLearningLoop loop(fe, members, oracle, alo);

  auto backend = std::make_shared<ServedForceBackend>(
      fe, backend_options({"pot/0", "pot/1"}));
  const std::int64_t num_traj = 4;
  const std::int64_t steps = 4;
  std::vector<std::shared_ptr<materials::MDSimulator>> trajs;
  for (std::int64_t t = 0; t < num_traj; ++t) {
    trajs.push_back(std::make_shared<materials::MDSimulator>(
        materials::LiPSDataset::initial_structure(), short_md_options(steps),
        200 + static_cast<std::uint64_t>(t)));
  }
  TrajectorySchedulerOptions sopts;
  sopts.wave_size = 2;
  TrajectoryScheduler scheduler(trajs, backend, sopts);

  std::uint64_t max_version_seen = 0;
  scheduler.set_frame_hook([&](std::int64_t traj, std::int64_t step,
                               const materials::Structure& s,
                               const ForceEval& ev) {
    max_version_seen = std::max(max_version_seen, ev.version);
    loop.observe_frame(traj, step, s, ev);
  });
  scheduler.set_mid_wave_hook(loop.mid_wave_hook());

  const std::int64_t frames = scheduler.run();

  // Zero loss: every step of every trajectory completed.
  EXPECT_EQ(frames, num_traj * steps);
  for (const auto& t : trajs) EXPECT_TRUE(t->done());

  // Exactly one fine-tune cycle ran, redeploying both members as v2
  // while the dynamics kept flowing.
  EXPECT_EQ(loop.finetunes(), 1);
  EXPECT_GE(loop.labels(), alo.min_labels);
  EXPECT_EQ(fe.registry().active_version("pot/0"), 2u);
  EXPECT_EQ(fe.registry().active_version("pot/1"), 2u);
  EXPECT_GE(fe.registry().swaps(), 2);
  // Frames evaluated after the swap carry the new version.
  EXPECT_EQ(max_version_seen, 2u);
}

TEST(ActiveLearning, FinetuneReducesErrorOnGatedFrames) {
  // The loop's purpose: after fine-tuning on oracle labels, the
  // ensemble's energy error on the gated frames must drop.
  ensure_pool(4);
  ServeFrontend fe;
  std::vector<EnsembleMemberSpec> members;
  for (std::size_t m = 0; m < 2; ++m) {
    const std::uint64_t seed = 41 + m;
    EnsembleMemberSpec spec;
    spec.name = "pot/" + std::to_string(m);
    spec.task = make_potential_task(seed);
    spec.make_serving_task = [seed]() { return make_potential_task(seed); };
    auto serving = make_potential_task(seed);
    nn::load_into_module(*serving, nn::state_dict(*spec.task));
    fe.deploy(spec.name, 1, make_session(serving), wave_scheduler_options());
    members.push_back(std::move(spec));
  }
  materials::PropertyOracle oracle(5);
  ActiveLearningOptions alo;
  alo.gate.force_std_threshold = 0.0;
  alo.min_labels = 6;
  alo.max_finetunes = 1;
  alo.finetune_epochs = 8;
  alo.batch_size = 4;
  alo.learning_rate = 3e-3;
  alo.collate.radius.cutoff = kCollateCutoff;
  alo.scheduler = wave_scheduler_options();
  ActiveLearningLoop loop(fe, members, oracle, alo);

  auto backend = std::make_shared<ServedForceBackend>(
      fe, backend_options({"pot/0", "pot/1"}));
  std::vector<std::shared_ptr<materials::MDSimulator>> trajs;
  for (std::int64_t t = 0; t < 2; ++t) {
    trajs.push_back(std::make_shared<materials::MDSimulator>(
        materials::LiPSDataset::initial_structure(), short_md_options(6),
        300 + static_cast<std::uint64_t>(t)));
  }
  TrajectoryScheduler scheduler(trajs, backend, {});

  // Pre-finetune energy error of the served ensemble on gated frames.
  std::vector<data::StructureSample> gated;
  double err_before = 0.0;
  std::int64_t n_before = 0;
  scheduler.set_frame_hook([&](std::int64_t traj, std::int64_t step,
                               const materials::Structure& s,
                               const ForceEval& ev) {
    if (loop.finetunes() == 0) {
      std::vector<core::Vec3> tmp;
      const double truth = oracle.energy_and_forces(s, tmp);
      err_before += std::fabs(ev.energy - truth);
      ++n_before;
    }
    loop.observe_frame(traj, step, s, ev);
  });
  scheduler.set_mid_wave_hook(loop.mid_wave_hook());
  scheduler.run();
  ASSERT_EQ(loop.finetunes(), 1);
  ASSERT_GT(n_before, 0);
  err_before /= static_cast<double>(n_before);

  // Post-finetune error of the redeployed ensemble on the buffered
  // (gated, labeled) frames.
  MLPotential pot(fe, backend_options({"pot/0", "pot/1"}));
  double err_after = 0.0;
  std::int64_t n_after = 0;
  for (std::int64_t i = 0; i < loop.buffer().size(); ++i) {
    const data::StructureSample sample = loop.buffer().get(i);
    materials::Structure s;
    s.lattice = *sample.lattice;
    s.species = sample.species;
    const core::Mat3 inv = core::inverse3(s.lattice);
    for (const core::Vec3& p : sample.positions) {
      s.frac.push_back(core::vecmat(p, inv));
    }
    std::vector<core::Vec3> f;
    const double pred = pot.energy_and_forces(s, f);
    const double truth =
        static_cast<double>(sample.scalar_targets.at("energy")) *
        static_cast<double>(s.num_atoms());
    err_after += std::fabs(pred - truth);
    ++n_after;
  }
  ASSERT_GT(n_after, 0);
  err_after /= static_cast<double>(n_after);
  EXPECT_LT(err_after, err_before);
}

}  // namespace
}  // namespace matsci::sim
