// Tests for the production serving frontend (src/serve/frontend):
// canonicalized-structure cache keys, the LRU response cache, the
// admission-control state machine, the versioned model registry with
// atomic hot-swap, and the full frontend submit path under overload.
// Label `serve` so the suite runs under TSan/ASan in the CI matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "core/macros.hpp"
#include "materials/materials_project.hpp"
#include "models/egnn.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "sym/canonical.hpp"
#include "sym/symop.hpp"
#include "tasks/regression.hpp"

namespace matsci::serve::frontend {
namespace {

using core::RngEngine;

models::EGNNConfig tiny_encoder_config() {
  models::EGNNConfig cfg;
  cfg.hidden_dim = 16;
  cfg.pos_hidden = 8;
  cfg.num_layers = 2;
  return cfg;
}

models::OutputHeadConfig tiny_head_config() {
  models::OutputHeadConfig cfg;
  cfg.hidden_dim = 16;
  cfg.num_blocks = 2;
  cfg.dropout = 0.0f;
  return cfg;
}

std::shared_ptr<tasks::ScalarRegressionTask> make_task(std::uint64_t seed) {
  RngEngine rng(seed);
  auto encoder = std::make_shared<models::EGNN>(tiny_encoder_config(), rng);
  return std::make_shared<tasks::ScalarRegressionTask>(
      encoder, "band_gap", tiny_head_config(), rng,
      data::TargetStats{2.0f, 1.5f});
}

std::shared_ptr<InferenceSession> make_session(
    const std::shared_ptr<tasks::Task>& task) {
  InferenceSessionOptions opts;
  opts.collate.radius.cutoff = 4.5;
  return std::make_shared<InferenceSession>(task, opts);
}

std::vector<data::StructureSample> sample_pool(std::int64_t n,
                                               std::uint64_t seed) {
  materials::MaterialsProjectDataset ds(n, seed);
  std::vector<data::StructureSample> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) pool.push_back(ds.get(i));
  return pool;
}

/// Inference-only task with a configurable forward-pass delay — makes
/// overload deterministic to provoke in tests without a real model.
class SlowEchoTask : public tasks::Task {
 public:
  explicit SlowEchoTask(std::chrono::milliseconds delay) : delay_(delay) {}

  tasks::TaskOutput step(const data::Batch&) const override {
    throw matsci::Error("SlowEchoTask is inference-only");
  }
  std::shared_ptr<models::Encoder> encoder() const override {
    return nullptr;
  }
  std::vector<tasks::Prediction> predict_batch(
      const data::Batch& batch, const std::string& target) const override {
    MATSCI_CHECK(target == "echo", "unknown target " << target);
    std::this_thread::sleep_for(delay_);
    std::vector<tasks::Prediction> out(
        static_cast<std::size_t>(batch.num_graphs()));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].value = static_cast<float>(i);
    }
    return out;
  }

 private:
  std::chrono::milliseconds delay_;
};

SchedulerOptions slow_scheduler_options(std::int64_t queue_capacity) {
  SchedulerOptions opts;
  opts.max_batch_size = 1;  // one forward per request: slowest drain
  opts.max_wait_us = 0;
  opts.num_workers = 1;
  opts.queue_capacity = queue_capacity;
  return opts;
}

// --- Canonical structure hash -----------------------------------------------

data::StructureSample simple_sample() {
  data::StructureSample s;
  s.species = {8, 1, 1};
  s.positions = {{0.00013, 0.0, 0.0}, {0.75731, 0.58631, 0.0},
                 {-0.75731, 0.58631, 0.0}};
  return s;
}

TEST(CanonicalHash, PermutationAndTranslationInvariant) {
  const data::StructureSample a = simple_sample();

  data::StructureSample permuted;
  permuted.species = {1, 8, 1};
  permuted.positions = {a.positions[1], a.positions[0], a.positions[2]};

  data::StructureSample translated = a;
  for (core::Vec3& p : translated.positions) p += core::Vec3{3.1, -2.7, 9.4};

  const std::uint64_t h = sym::canonical_structure_hash(a);
  EXPECT_EQ(sym::canonical_structure_hash(permuted), h);
  EXPECT_EQ(sym::canonical_structure_hash(translated), h);
}

TEST(CanonicalHash, QuantizationFoldsSubGridJitterOnly) {
  const data::StructureSample a = simple_sample();
  sym::CanonicalOptions opts;
  opts.grid = 1e-3;

  // Jitter far below the grid: same key.
  data::StructureSample jittered = a;
  jittered.positions[1].x += 1e-6;
  EXPECT_EQ(sym::canonical_structure_hash(jittered, opts),
            sym::canonical_structure_hash(a, opts));

  // Displacement beyond the grid: different key.
  data::StructureSample moved = a;
  moved.positions[1].x += 5e-3;
  EXPECT_NE(sym::canonical_structure_hash(moved, opts),
            sym::canonical_structure_hash(a, opts));
}

TEST(CanonicalHash, SensitiveToSpeciesLatticeAndDataset) {
  const data::StructureSample a = simple_sample();
  const std::uint64_t h = sym::canonical_structure_hash(a);

  data::StructureSample other_species = a;
  other_species.species[0] = 16;
  EXPECT_NE(sym::canonical_structure_hash(other_species), h);

  data::StructureSample with_lattice = a;
  with_lattice.lattice = core::identity3();
  EXPECT_NE(sym::canonical_structure_hash(with_lattice), h);

  data::StructureSample other_dataset = a;
  other_dataset.dataset_id = 3;
  EXPECT_NE(sym::canonical_structure_hash(other_dataset), h);
}

TEST(CanonicalHash, PrincipalAxisAlignmentFoldsRotation) {
  // A generic (asymmetric) cloud, rotated rigidly: the aligned hash
  // folds the rotation, the default hash does not.
  data::StructureSample a;
  a.species = {6, 7, 8, 1};
  a.positions = {{0.1117, 0.2231, 0.3347},
                 {1.4413, 0.1129, -0.2221},
                 {-0.3339, 1.2227, 0.4441},
                 {0.5557, -0.8883, 1.1113}};

  const core::Mat3 rot = sym::rotation({0.267, 0.535, 0.802}, 0.83);
  data::StructureSample rotated = a;
  for (core::Vec3& p : rotated.positions) p = matvec(rot, p);

  sym::CanonicalOptions aligned;
  aligned.align_principal_axes = true;
  aligned.grid = 1e-3;  // coarse grid absorbs alignment round-off
  EXPECT_EQ(sym::canonical_structure_hash(rotated, aligned),
            sym::canonical_structure_hash(a, aligned));
  EXPECT_NE(sym::canonical_structure_hash(rotated),
            sym::canonical_structure_hash(a));
}

// --- ResponseCache ----------------------------------------------------------

tasks::Prediction prediction_of(float v) {
  tasks::Prediction p;
  p.value = v;
  return p;
}

TEST(ResponseCache, LruEvictionKeepsRecentlyTouchedEntries) {
  ResponseCacheOptions opts;
  opts.capacity = 2;
  ResponseCache cache(opts);

  cache.insert("a", prediction_of(1.0f));
  cache.insert("b", prediction_of(2.0f));
  ASSERT_TRUE(cache.lookup("a").has_value());  // refreshes "a"
  cache.insert("c", prediction_of(3.0f));      // evicts LRU = "b"

  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());

  const ResponseCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.hits, 3);
  EXPECT_EQ(s.misses, 1);
  EXPECT_NEAR(s.hit_rate(), 0.75, 1e-12);
}

TEST(ResponseCache, KeyFoldsStructureTargetAndVersion) {
  ResponseCache cache;
  const auto pool = sample_pool(2, 21);
  const std::string k = cache.make_key(pool[0], "band_gap", 1);
  EXPECT_EQ(cache.make_key(pool[0], "band_gap", 1), k);
  EXPECT_NE(cache.make_key(pool[1], "band_gap", 1), k);
  EXPECT_NE(cache.make_key(pool[0], "efermi", 1), k);
  // A hot-swap bumps the version, so stale answers stop matching.
  EXPECT_NE(cache.make_key(pool[0], "band_gap", 2), k);
}

TEST(ResponseCache, ZeroCapacityDisablesCaching) {
  ResponseCacheOptions opts;
  opts.capacity = 0;
  ResponseCache cache(opts);
  cache.insert("a", prediction_of(1.0f));
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

// --- AdmissionController ----------------------------------------------------

TEST(AdmissionController, ShedsLeastUrgentClassesFirst) {
  AdmissionOptions opts;
  opts.initial_service_us = 1000.0;
  AdmissionController ctl(opts, /*queue_capacity=*/10, /*num_workers=*/1);

  // depth 6: batch share floor(0.6*10)=6 is exhausted, standard
  // (floor 8) and interactive (10) still admit.
  EXPECT_TRUE(ctl.decide(Priority::kInteractive, 6, 0).admitted());
  EXPECT_TRUE(ctl.decide(Priority::kStandard, 6, 0).admitted());
  const AdmissionDecision bulk = ctl.decide(Priority::kBatch, 6, 0);
  EXPECT_EQ(bulk.outcome, AdmissionOutcome::kQueueFull);
  EXPECT_GE(bulk.retry_after_us, opts.min_retry_after_us);

  // depth 8: standard sheds too; interactive holds until the hard cap.
  EXPECT_EQ(ctl.decide(Priority::kStandard, 8, 0).outcome,
            AdmissionOutcome::kQueueFull);
  EXPECT_TRUE(ctl.decide(Priority::kInteractive, 9, 0).admitted());
  EXPECT_EQ(ctl.decide(Priority::kInteractive, 10, 0).outcome,
            AdmissionOutcome::kQueueFull);
}

TEST(AdmissionController, ShedsInfeasibleDeadlinesUpFront) {
  AdmissionOptions opts;
  opts.initial_service_us = 1000.0;
  AdmissionController ctl(opts, /*queue_capacity=*/100, /*num_workers=*/1);

  // Predicted wait at depth 5 is ~5000 µs: a 1 ms budget is dead on
  // arrival, a 10 ms budget is feasible.
  const AdmissionDecision dead = ctl.decide(Priority::kInteractive, 5, 1000);
  EXPECT_EQ(dead.outcome, AdmissionOutcome::kDeadlineInfeasible);
  EXPECT_GE(dead.retry_after_us, opts.min_retry_after_us);
  EXPECT_TRUE(ctl.decide(Priority::kInteractive, 5, 10'000).admitted());
}

TEST(AdmissionController, ServiceEstimateTracksObservations) {
  AdmissionOptions opts;
  opts.initial_service_us = 1000.0;
  opts.ewma_alpha = 0.5;
  AdmissionController ctl(opts, 10, 2);
  // First observation seeds the EWMA outright.
  ctl.observe_service(4000.0);
  EXPECT_NEAR(ctl.service_estimate_us(), 4000.0, 1e-9);
  ctl.observe_service(2000.0);
  EXPECT_NEAR(ctl.service_estimate_us(), 3000.0, 1e-9);
  // Wait scales with depth and divides across workers.
  EXPECT_NEAR(ctl.estimated_wait_us(4), 4 * 3000.0 / 2, 1e-9);
}

// --- ModelRegistry ----------------------------------------------------------

TEST(ModelRegistry, DeployResolveRetire) {
  ModelRegistry registry;
  EXPECT_EQ(registry.resolve("m"), nullptr);
  EXPECT_EQ(registry.active_version("m"), 0u);

  auto task = make_task(31);
  registry.deploy("m", 1, make_session(task), {});
  auto entry = registry.resolve("m");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->version(), 1u);
  EXPECT_EQ(registry.active_version("m"), 1u);
  EXPECT_EQ(registry.models(), std::vector<std::string>{"m"});

  registry.retire("m");
  EXPECT_EQ(registry.resolve("m"), nullptr);
}

TEST(ModelRegistry, RejectsNonMonotonicVersions) {
  ModelRegistry registry;
  auto task = make_task(32);
  registry.deploy("m", 3, make_session(task), {});
  EXPECT_THROW(registry.deploy("m", 3, make_session(task), {}),
               matsci::Error);
  EXPECT_THROW(registry.deploy("m", 2, make_session(task), {}),
               matsci::Error);
  EXPECT_EQ(registry.active_version("m"), 3u);
}

TEST(ModelRegistry, HotSwapDrainsDisplacedVersion) {
  ModelRegistry registry;
  auto task = make_task(33);
  const auto pool = sample_pool(4, 34);

  SchedulerOptions opts;
  opts.max_batch_size = 8;
  opts.max_wait_us = 5'000'000;  // long window: the drain must cut it
  opts.num_workers = 1;
  auto v1 = registry.deploy("m", 1, make_session(task), opts);

  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(v1->scheduler().submit(
        pool[static_cast<std::size_t>(i) % pool.size()], "band_gap"));
  }
  // deploy(v2) publishes v2, then blocks until v1 has served everything
  // it accepted.
  registry.deploy("m", 2, make_session(task), opts);
  EXPECT_EQ(registry.active_version("m"), 2u);
  EXPECT_EQ(registry.swaps(), 1);
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
  // The displaced scheduler no longer accepts work.
  EXPECT_EQ(v1->scheduler().try_submit(pool[0], "band_gap").status,
            PushStatus::kShutdown);
}

// --- ServeFrontend ----------------------------------------------------------

TEST(ServeFrontend, UnknownModelIsAnExplicitStatus) {
  ServeFrontend frontend;
  const auto pool = sample_pool(1, 41);
  SubmitOutcome out = frontend.submit("nope", pool[0], "band_gap");
  EXPECT_EQ(out.status, SubmitStatus::kNoSuchModel);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(frontend.stats().no_such_model, 1);
}

TEST(ServeFrontend, CacheHitIsBitExactAndSkipsTheQueue) {
  ServeFrontend frontend;
  auto task = make_task(42);
  frontend.deploy("m", 1, make_session(task), {});
  const auto pool = sample_pool(2, 43);

  SubmitOutcome first = frontend.submit("m", pool[0], "band_gap");
  ASSERT_EQ(first.status, SubmitStatus::kAccepted);
  const float served = first.future.get().prediction.value;

  // Same structure again: answered from the cache, bit-exact, no batch.
  SubmitOutcome second = frontend.submit("m", pool[0], "band_gap");
  ASSERT_EQ(second.status, SubmitStatus::kCacheHit);
  PredictResult cached = second.future.get();
  EXPECT_EQ(cached.prediction.value, served);
  EXPECT_EQ(cached.batch_size, 0);

  // A translated copy canonicalizes to the same key.
  data::StructureSample translated = pool[0];
  for (core::Vec3& p : translated.positions) p += core::Vec3{1.5, 0.5, -2.0};
  SubmitOutcome third = frontend.submit("m", translated, "band_gap");
  EXPECT_EQ(third.status, SubmitStatus::kCacheHit);

  // A different structure misses.
  SubmitOutcome fourth = frontend.submit("m", pool[1], "band_gap");
  EXPECT_EQ(fourth.status, SubmitStatus::kAccepted);
  fourth.future.get();

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.cache_hits, 2);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_GE(frontend.cache().stats().hits, 2);
}

TEST(ServeFrontend, BypassingTheCacheStillServes) {
  ServeFrontend frontend;
  auto task = make_task(44);
  frontend.deploy("m", 1, make_session(task), {});
  const auto pool = sample_pool(1, 45);

  FrontendRequestOptions ropts;
  ropts.use_cache = false;
  SubmitOutcome a = frontend.submit("m", pool[0], "band_gap", ropts);
  SubmitOutcome b = frontend.submit("m", pool[0], "band_gap", ropts);
  ASSERT_EQ(a.status, SubmitStatus::kAccepted);
  ASSERT_EQ(b.status, SubmitStatus::kAccepted);
  EXPECT_EQ(a.future.get().prediction.value, b.future.get().prediction.value);
  EXPECT_EQ(frontend.stats().cache_hits, 0);
}

TEST(ServeFrontend, OverloadShedsWithRetryAfterInsteadOfQueueing) {
  ServeFrontend frontend;
  auto slow = std::make_shared<SlowEchoTask>(std::chrono::milliseconds(20));
  frontend.deploy("m", 1, make_session(slow),
                  slow_scheduler_options(/*queue_capacity=*/4));
  const auto pool = sample_pool(2, 46);

  // Burst far beyond capacity: submits are microseconds apart while
  // each forward takes 20 ms, so the bounded queue must shed.
  std::vector<std::future<PredictResult>> accepted;
  std::int64_t shed = 0;
  double max_retry_after = 0.0;
  FrontendRequestOptions ropts;
  ropts.use_cache = false;
  for (int i = 0; i < 40; ++i) {
    SubmitOutcome out = frontend.submit(
        "m", pool[static_cast<std::size_t>(i) % pool.size()], "echo", ropts);
    if (out.ok()) {
      accepted.push_back(std::move(out.future));
    } else {
      EXPECT_TRUE(out.shed());
      EXPECT_GE(out.retry_after_us, 1.0);
      max_retry_after = std::max(max_retry_after, out.retry_after_us);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);
  EXPECT_GT(max_retry_after, 0.0);
  for (auto& f : accepted) {
    EXPECT_NO_THROW(f.get());  // everything admitted is served
  }
  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.shed_queue_full, shed);
  EXPECT_GT(stats.shed_rate(), 0.0);
  frontend.retire("m");
}

TEST(ServeFrontend, InteractiveClassOutlivesBatchUnderPressure) {
  ServeFrontend frontend;
  auto slow = std::make_shared<SlowEchoTask>(std::chrono::milliseconds(30));
  frontend.deploy("m", 1, make_session(slow),
                  slow_scheduler_options(/*queue_capacity=*/4));
  const auto pool = sample_pool(1, 47);

  // Fill until the batch class sheds (its share is floor(0.6*4)=2).
  FrontendRequestOptions bulk;
  bulk.priority = Priority::kBatch;
  bulk.use_cache = false;
  std::vector<std::future<PredictResult>> futures;
  SubmitOutcome out;
  int guard = 0;
  do {
    out = frontend.submit("m", pool[0], "echo", bulk);
    if (out.ok()) futures.push_back(std::move(out.future));
    ASSERT_LT(++guard, 64);
  } while (out.status != SubmitStatus::kShedQueueFull);

  // Batch traffic is saturated — interactive still gets in.
  FrontendRequestOptions urgent;
  urgent.priority = Priority::kInteractive;
  urgent.use_cache = false;
  SubmitOutcome vip = frontend.submit("m", pool[0], "echo", urgent);
  EXPECT_EQ(vip.status, SubmitStatus::kAccepted);
  futures.push_back(std::move(vip.future));

  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
  frontend.retire("m");
}

TEST(ServeFrontend, InfeasibleDeadlineShedsUpFront) {
  ServeFrontend frontend;
  auto slow = std::make_shared<SlowEchoTask>(std::chrono::milliseconds(30));
  // Large queue: depth shedding stays out of the way.
  frontend.deploy("m", 1, make_session(slow),
                  slow_scheduler_options(/*queue_capacity=*/64));
  const auto pool = sample_pool(1, 48);

  FrontendRequestOptions ropts;
  ropts.use_cache = false;
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 6; ++i) {
    SubmitOutcome out = frontend.submit("m", pool[0], "echo", ropts);
    ASSERT_EQ(out.status, SubmitStatus::kAccepted);
    futures.push_back(std::move(out.future));
  }
  // With several 30 ms forwards queued, a 1 µs budget is infeasible.
  FrontendRequestOptions tight = ropts;
  tight.deadline_us = 1;
  SubmitOutcome dead = frontend.submit("m", pool[0], "echo", tight);
  EXPECT_EQ(dead.status, SubmitStatus::kShedDeadline);
  EXPECT_GT(dead.retry_after_us, 0.0);
  EXPECT_EQ(frontend.stats().shed_deadline, 1);
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
  frontend.retire("m");
}

TEST(ServeFrontend, HotSwapUnderLoadLosesNoInFlightRequests) {
  ServeFrontend frontend;
  auto task = make_task(51);
  const auto pool = sample_pool(6, 52);

  // Bit-exactness references from direct single-structure forwards.
  auto reference_session = make_session(task);
  std::vector<float> reference;
  for (const auto& s : pool) {
    reference.push_back(
        reference_session->predict({s}, "band_gap")[0].value);
  }

  SchedulerOptions opts;
  opts.max_batch_size = 8;
  opts.max_wait_us = 500;
  opts.num_workers = 2;
  frontend.deploy("m", 1, make_session(task), opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  std::atomic<int> lost{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> not_admitted{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      FrontendRequestOptions ropts;
      ropts.use_cache = false;  // force every request through a forward
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t idx =
            static_cast<std::size_t>(c * kPerClient + i) % pool.size();
        SubmitOutcome out =
            frontend.submit("m", pool[idx], "band_gap", ropts);
        if (!out.ok()) {
          ++not_admitted;  // unbounded queue: must never happen
          continue;
        }
        try {
          PredictResult r = out.future.get();
          if (r.prediction.value != reference[idx]) ++mismatches;
        } catch (...) {
          ++lost;
        }
      }
    });
  }
  // Swap to v2 (same weights) while the clients are mid-flight: v1
  // drains, v2 takes over, and nobody loses a request or sees a
  // different answer.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  frontend.deploy("m", 2, make_session(task), opts);
  for (auto& t : clients) t.join();

  EXPECT_EQ(lost.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(not_admitted.load(), 0);
  EXPECT_EQ(frontend.registry().active_version("m"), 2u);
  EXPECT_EQ(frontend.registry().swaps(), 1);
  EXPECT_EQ(frontend.stats().admitted, kClients * kPerClient);
}

TEST(ServeFrontend, ExportsServeSeriesThroughObsRegistry) {
  ServeFrontend frontend;
  auto task = make_task(53);
  frontend.deploy("m", 1, make_session(task), {});
  const auto pool = sample_pool(1, 54);
  frontend.submit("m", pool[0], "band_gap").future.get();
  frontend.submit("m", pool[0], "band_gap").future.get();  // cache hit

  const obs::MetricsRegistry::Snapshot snap =
      obs::MetricsRegistry::global().snapshot();
  for (const char* counter :
       {"serve.frontend.admitted", "serve.frontend.shed_full",
        "serve.frontend.shed_deadline", "serve.cache.hit",
        "serve.cache.miss", "serve.cache.evict", "serve.registry.deploys",
        "serve.registry.swaps", "serve.requests", "serve.deadline_drops"}) {
    EXPECT_TRUE(snap.counters.count(counter) == 1)
        << "missing counter " << counter;
  }
  for (const char* gauge :
       {"serve.frontend.queue_depth", "serve.cache.size",
        "serve.queue_depth"}) {
    EXPECT_TRUE(snap.gauges.count(gauge) == 1) << "missing gauge " << gauge;
  }
  EXPECT_TRUE(snap.histograms.count("serve.frontend.retry_after_us") == 1);
  EXPECT_GE(snap.counters.at("serve.frontend.admitted"), 1);
  EXPECT_GE(snap.counters.at("serve.cache.hit"), 1);
}

TEST(ServeFrontend, MdFramesMustBypassTheCache) {
  // Regression for the ML-potential MD path (src/sim): canonical
  // hashing quantizes coordinates on a 1e-4 Å grid, so two frames of a
  // continuously-evolving trajectory that differ by less than ~grid/2
  // collide onto one cache key — a cached-energy reply would feed the
  // integrator stale forces. Sim traffic therefore submits with
  // use_cache = false; this test pins both the collision and the
  // bypass.
  ServeFrontend fe;
  fe.deploy("pot", 1, make_session(make_task(21)));

  data::StructureSample frame = sample_pool(1, 77)[0];
  data::StructureSample next_frame = frame;
  next_frame.positions[0].x += 2e-5;  // one MD step's worth of motion

  // The two frames are physically different but hash identically.
  EXPECT_EQ(sym::canonical_structure_hash(frame),
            sym::canonical_structure_hash(next_frame));

  auto first = fe.submit("pot", frame, "band_gap");
  ASSERT_EQ(first.status, SubmitStatus::kAccepted);
  first.future.get();

  // A cached client would be handed frame-1's answer for frame-2.
  auto stale = fe.submit("pot", next_frame, "band_gap");
  EXPECT_EQ(stale.status, SubmitStatus::kCacheHit);

  // The sim backend's bypass: always recomputed, never a cache hit.
  FrontendRequestOptions bypass;
  bypass.use_cache = false;
  auto fresh = fe.submit("pot", next_frame, "band_gap", bypass);
  EXPECT_EQ(fresh.status, SubmitStatus::kAccepted);
  fresh.future.get();
  EXPECT_EQ(fe.stats().cache_hits, 1);
}

}  // namespace
}  // namespace matsci::serve::frontend
