#!/usr/bin/env bash
# Aggregate per-binary bench outputs into one trajectory file.
#
# Every bench binary writes BENCH_<name>.json (JSON-lines: one meta
# record, per-run records, a registry snapshot) into $MATSCI_BENCH_DIR
# (or the cwd). This script concatenates every BENCH_*.json found there
# into BENCH_trajectory.json — a single JSON-lines file with one
# trajectory meta line followed by every source line tagged with its
# originating file — so dashboards ingest one artifact per CI run
# instead of globbing.
#
# Usage:
#   collect_bench.sh [dir]     aggregate BENCH_*.json under dir
#                              (default: $MATSCI_BENCH_DIR, else .)
#   collect_bench.sh --selftest
#       build a temp dir with synthetic BENCH_*.json files, aggregate,
#       and verify line counts and tags (registered as the
#       `collect_bench` ctest, label `lint`).
set -u

aggregate() {
  local dir="$1"
  if [ ! -d "$dir" ]; then
    echo "collect_bench: no such directory: $dir" >&2
    return 2
  fi

  local out="$dir/BENCH_trajectory.json"
  local tmp="$out.tmp"
  local sources=()
  local f
  for f in "$dir"/BENCH_*.json; do
    [ -e "$f" ] || continue
    case "$(basename "$f")" in
      BENCH_trajectory.json) continue ;;  # never ingest our own output
    esac
    sources+=("$f")
  done

  {
    printf '{"record":"meta","schema":"matsci.trajectory.v1",'
    printf '"emitted_unix_s":%s,"num_sources":%d}\n' \
      "$(date +%s)" "${#sources[@]}"
    local src base
    for src in "${sources[@]}"; do
      base="$(basename "$src")"
      # Tag every line with its source file: rewrite the leading '{'
      # to '{"source":"<file>",'. Lines are flat JSON objects by the
      # BenchReporter contract, so this produces valid JSON.
      sed -e "s/^{/{\"source\":\"${base}\",/" "$src"
    done
  } > "$tmp"
  mv "$tmp" "$out"
  echo "collect_bench: wrote $out (${#sources[@]} source files)"
}

selftest() {
  # Not `local`: the EXIT trap fires after the function returns.
  selftest_dir="$(mktemp -d)"
  trap 'rm -rf "${selftest_dir:-}"' EXIT
  local dir="$selftest_dir"

  printf '{"record":"meta","bench":"a"}\n{"record":"run","x":1}\n' \
    > "$dir/BENCH_a.json"
  printf '{"record":"meta","bench":"b"}\n' > "$dir/BENCH_b.json"
  # Open-loop serving artifact (closed_loop:false distinguishes it from
  # bench_serving's closed-loop records) — must ride the same glob. The
  # run line carries the telemetry-plane fields: mid-overload /metrics
  # scrape accounting, end-to-end trace continuity, and per-stage
  # latency attribution.
  printf '%s\n%s\n' \
    '{"record":"meta","bench":"serve_openloop"}' \
    '{"record":"run","closed_loop":false,"multiplier":10,"p99_us":9000,"scrapes":8,"scrapes_valid":8,"scrape_mean_us":410.2,"scrape_max_us":902.7,"trace_continuity_ok":1,"stage_queue_wait_mean_us":1800.4,"stage_forward_mean_us":950.1}' \
    > "$dir/BENCH_serve_openloop.json"
  # fig2's compressed-DDP records (comm/coll): per-compressor wire
  # accounting + overlap fraction must aggregate untouched.
  printf '%s\n%s\n' \
    '{"record":"meta","bench":"fig2_scaleout"}' \
    '{"record":"ddp_compression","compressor":"int8","grad_bytes":1000,"wire_bytes":254,"measured_ratio":0.254,"predicted_ratio":0.25,"overlap_fraction":0.42,"final_loss":1.5}' \
    > "$dir/BENCH_fig2_scaleout.json"
  # fig4_mdscale's MD-at-scale records: wave-throughput accounting and
  # the active-learning outcome must aggregate with fields intact.
  printf '%s\n%s\n%s\n' \
    '{"record":"meta","bench":"fig4_mdscale"}' \
    '{"record":"md_scale","mode":"wave","frames_per_s":120.5,"mean_batch_occupancy":7.8,"speedup_vs_sequential":4.2,"wave_trace_continuity_ok":1}' \
    '{"record":"active_learning","gated_frame_fraction":0.31,"force_mae_pre":0.21,"force_mae_post":0.09}' \
    > "$dir/BENCH_fig4_mdscale.json"
  # A stale trajectory must be excluded from its own rebuild.
  printf '{"record":"meta","schema":"matsci.trajectory.v1"}\n' \
    > "$dir/BENCH_trajectory.json"

  aggregate "$dir" || return 1

  local out="$dir/BENCH_trajectory.json"
  local lines
  lines=$(wc -l < "$out")
  # 1 meta + 2 from a + 1 from b + 2 from serve_openloop + 2 from fig2
  # + 3 from fig4_mdscale
  if [ "$lines" -ne 11 ]; then
    echo "collect_bench selftest: expected 11 lines, got $lines" >&2
    cat "$out" >&2
    return 1
  fi
  if ! head -1 "$out" | grep -q '"schema":"matsci.trajectory.v1"'; then
    echo "collect_bench selftest: missing trajectory meta line" >&2
    return 1
  fi
  if ! grep -q '"source":"BENCH_a.json"' "$out" ||
     ! grep -q '"source":"BENCH_b.json"' "$out"; then
    echo "collect_bench selftest: missing source tags" >&2
    return 1
  fi
  # The open-loop record must land tagged, with its closed_loop marker
  # intact so trajectory consumers can split the two serving harnesses.
  if ! grep -q '"source":"BENCH_serve_openloop.json","record":"run","closed_loop":false' "$out"; then
    echo "collect_bench selftest: open-loop artifact missing or untagged" >&2
    return 1
  fi
  # The telemetry-plane fields must survive aggregation: scrape
  # accounting + continuity verdict + stage attribution are what
  # dashboards alert on.
  if ! grep -q '"scrapes":8,"scrapes_valid":8' "$out" ||
     ! grep -q '"trace_continuity_ok":1' "$out" ||
     ! grep -q '"stage_queue_wait_mean_us":1800.4' "$out" ||
     ! grep -q '"stage_forward_mean_us":950.1' "$out"; then
    echo "collect_bench selftest: telemetry fields missing from open-loop record" >&2
    return 1
  fi
  # The compression record must keep its per-compressor fields (ratio,
  # overlap) so dashboards can plot predicted-vs-measured wire savings.
  if ! grep -q '"source":"BENCH_fig2_scaleout.json","record":"ddp_compression","compressor":"int8"' "$out" ||
     ! grep -q '"overlap_fraction":0.42' "$out"; then
    echo "collect_bench selftest: fig2 compression record missing fields" >&2
    return 1
  fi
  # The MD-at-scale records must keep their throughput and
  # active-learning fields so dashboards can plot wave speedup and the
  # post-fine-tune error drop.
  if ! grep -q '"source":"BENCH_fig4_mdscale.json","record":"md_scale","mode":"wave"' "$out" ||
     ! grep -q '"wave_trace_continuity_ok":1' "$out" ||
     ! grep -q '"frames_per_s":120.5' "$out" ||
     ! grep -q '"mean_batch_occupancy":7.8' "$out" ||
     ! grep -q '"gated_frame_fraction":0.31' "$out" ||
     ! grep -q '"force_mae_post":0.09' "$out"; then
    echo "collect_bench selftest: fig4_mdscale record missing fields" >&2
    return 1
  fi
  if grep -q '"source":"BENCH_trajectory.json"' "$out"; then
    echo "collect_bench selftest: ingested its own output" >&2
    return 1
  fi
  # Idempotence: re-aggregating over the produced trajectory must not
  # change the line count.
  aggregate "$dir" || return 1
  lines=$(wc -l < "$out")
  if [ "$lines" -ne 11 ]; then
    echo "collect_bench selftest: re-aggregation not idempotent" >&2
    return 1
  fi
  echo "collect_bench selftest: OK"
}

if [ "${1:-}" = "--selftest" ]; then
  selftest
  exit $?
fi

aggregate "${1:-${MATSCI_BENCH_DIR:-.}}"
