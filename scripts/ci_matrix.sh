#!/usr/bin/env bash
# CI build matrix for configurations tier-1 verify does not cover:
#
#   obs-off   -DMATSCI_OBS=OFF build + the obs/health test labels —
#             proves the MATSCI_TRACE_SCOPE compile-out path and the
#             health monitor still build and pass without the macro.
#   tsan      -DMATSCI_SANITIZE=thread build running every
#             concurrency-sensitive label (serve, parallel, obs,
#             health) — the health monitor runs inside DDP rank
#             threads, so its registry/ring accesses must be
#             TSan-clean.
#   asan      -DMATSCI_SANITIZE=address build running the serve label —
#             the frontend's hot-swap drains retire whole
#             scheduler/session object graphs while clients still hold
#             futures into them, so lifetime bugs (use-after-free on a
#             drained ServingModel, leaked promises) surface here, not
#             under TSan.
#
# Usage: ci_matrix.sh [obs-off|tsan|asan|all]   (default: all)
# Build trees land in build-obs-off/, build-tsan/, and build-asan/ at
# the repo root.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
stage="${1:-all}"
jobs="${MATSCI_CI_JOBS:-$(nproc)}"

run_obs_off() {
  echo "=== ci_matrix: obs-off (-DMATSCI_OBS=OFF) ==="
  cmake -B "$repo_root/build-obs-off" -S "$repo_root" -DMATSCI_OBS=OFF
  cmake --build "$repo_root/build-obs-off" -j "$jobs"
  ctest --test-dir "$repo_root/build-obs-off" -L "obs|health" \
    --output-on-failure -j "$jobs"
}

run_tsan() {
  echo "=== ci_matrix: tsan (-DMATSCI_SANITIZE=thread) ==="
  cmake -B "$repo_root/build-tsan" -S "$repo_root" -DMATSCI_SANITIZE=thread
  cmake --build "$repo_root/build-tsan" -j "$jobs"
  ctest --test-dir "$repo_root/build-tsan" \
    -L "serve|parallel|obs|health" --output-on-failure -j "$jobs"
}

run_asan() {
  echo "=== ci_matrix: asan (-DMATSCI_SANITIZE=address) ==="
  cmake -B "$repo_root/build-asan" -S "$repo_root" \
    -DMATSCI_SANITIZE=address
  cmake --build "$repo_root/build-asan" -j "$jobs"
  ctest --test-dir "$repo_root/build-asan" -L serve \
    --output-on-failure -j "$jobs"
}

case "$stage" in
  obs-off) run_obs_off ;;
  tsan) run_tsan ;;
  asan) run_asan ;;
  all)
    run_obs_off
    run_tsan
    run_asan
    ;;
  *)
    echo "ci_matrix: unknown stage '$stage' (obs-off|tsan|asan|all)" >&2
    exit 2
    ;;
esac
echo "=== ci_matrix: $stage OK ==="
