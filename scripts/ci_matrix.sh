#!/usr/bin/env bash
# CI build matrix for configurations tier-1 verify does not cover:
#
#   obs-off   -DMATSCI_OBS=OFF build + the obs/health test labels —
#             proves the MATSCI_TRACE_SCOPE compile-out path and the
#             health monitor still build and pass without the macro.
#             The obs_http label matches the "obs" regex too: the
#             telemetry-plane tests must all GTEST_SKIP cleanly there
#             (zero-size TraceContext, no socket code linked).
#   tsan      -DMATSCI_SANITIZE=thread build running every
#             concurrency-sensitive label (serve, parallel, obs,
#             obs_http, health, ddp, sim) — the health monitor runs inside DDP
#             rank threads, so its registry/ring accesses must be
#             TSan-clean; the ddp label adds the bucketed-collective
#             engine, whose rank threads post buckets while pool
#             workers reduce them, plus the elastic kill/rebuild path;
#             the sim label drives MD waves through the frontend while
#             dispatcher jobs serve from pool threads and the
#             active-learning loop hot-swaps model versions mid-wave;
#             the obs_http label scrapes /metrics from a client socket
#             while pool mutators hammer the sharded registry and the
#             dispatcher serves — exemplar stores, the in-flight set,
#             and the wake-pipe shutdown must all be TSan-clean.
#   asan      -DMATSCI_SANITIZE=address build running the serve,
#             backend, sim, and obs_http labels — the frontend's hot-swap drains retire
#             whole scheduler/session object graphs while clients still
#             hold futures into them, so lifetime bugs (use-after-free
#             on a drained ServingModel, leaked promises) surface here,
#             not under TSan. The backend label runs twice: once pooled
#             and once with MATSCI_TENSOR_POOL=0, so ASan sees each
#             tensor buffer's exact lifetime instead of pooled reuse
#             (a read past a pooled buffer's end lands in cached bytes
#             and would otherwise go unnoticed).
#   scalar    forced-scalar fallback (MATSCI_KERNEL_BACKEND=scalar) on
#             the regular tier-1 build tree — the portable kernel path
#             must keep passing the full suite on machines whose
#             default backend is AVX2/AVX-512, or it rots unnoticed.
#
# Usage: ci_matrix.sh [obs-off|tsan|asan|scalar|all]   (default: all)
# Build trees land in build-obs-off/, build-tsan/, build-asan/, and
# build-scalar/ at the repo root.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
stage="${1:-all}"
jobs="${MATSCI_CI_JOBS:-$(nproc)}"

run_obs_off() {
  echo "=== ci_matrix: obs-off (-DMATSCI_OBS=OFF) ==="
  cmake -B "$repo_root/build-obs-off" -S "$repo_root" -DMATSCI_OBS=OFF
  cmake --build "$repo_root/build-obs-off" -j "$jobs"
  ctest --test-dir "$repo_root/build-obs-off" -L "obs|health" \
    --output-on-failure -j "$jobs"
}

run_tsan() {
  echo "=== ci_matrix: tsan (-DMATSCI_SANITIZE=thread) ==="
  cmake -B "$repo_root/build-tsan" -S "$repo_root" -DMATSCI_SANITIZE=thread
  cmake --build "$repo_root/build-tsan" -j "$jobs"
  ctest --test-dir "$repo_root/build-tsan" \
    -L "serve|parallel|obs|obs_http|health|ddp|sim" \
    --output-on-failure -j "$jobs"
}

run_asan() {
  echo "=== ci_matrix: asan (-DMATSCI_SANITIZE=address) ==="
  cmake -B "$repo_root/build-asan" -S "$repo_root" \
    -DMATSCI_SANITIZE=address
  cmake --build "$repo_root/build-asan" -j "$jobs"
  ctest --test-dir "$repo_root/build-asan" -L "serve|backend|sim|obs_http" \
    --output-on-failure -j "$jobs"
  # Pool off: every tensor buffer gets its own malloc/free so ASan
  # checks exact lifetimes (the pooled run above checks the recycling
  # machinery itself; the steady-state tests skip themselves when the
  # pool is disabled).
  MATSCI_TENSOR_POOL=0 ctest --test-dir "$repo_root/build-asan" \
    -L backend --output-on-failure -j "$jobs"
}

run_scalar() {
  echo "=== ci_matrix: scalar (MATSCI_KERNEL_BACKEND=scalar) ==="
  cmake -B "$repo_root/build-scalar" -S "$repo_root"
  cmake --build "$repo_root/build-scalar" -j "$jobs"
  MATSCI_KERNEL_BACKEND=scalar ctest --test-dir "$repo_root/build-scalar" \
    --output-on-failure -j "$jobs"
}

case "$stage" in
  obs-off) run_obs_off ;;
  tsan) run_tsan ;;
  asan) run_asan ;;
  scalar) run_scalar ;;
  all)
    run_obs_off
    run_tsan
    run_asan
    run_scalar
    ;;
  *)
    echo "ci_matrix: unknown stage '$stage' (obs-off|tsan|asan|scalar|all)" >&2
    exit 2
    ;;
esac
echo "=== ci_matrix: $stage OK ==="
