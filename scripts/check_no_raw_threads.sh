#!/usr/bin/env bash
# Lint: all parallelism must go through the shared pool in
# src/core/parallel/. Raw std::thread construction (including
# vector<std::thread> worker farms), std::jthread, OpenMP pragmas, and
# std::async anywhere else are rejected — they bypass
# MATSCI_NUM_THREADS sizing, the nesting guard, and the determinism
# contract (see DESIGN.md "Threading model").
#
# Exempt:
#   src/core/parallel/  — the pool implementation itself
#   src/comm/           — simulated DDP ranks are threads by design
#   files carrying a `raw-threads-ok:` comment with a justification —
#     e.g. closed-loop bench clients that must block on futures (pool
#     workers would deadlock against the serve dispatch jobs they feed)
#
# No-waiver zone: src/serve/frontend/ — the production serving frontend
# must schedule exclusively on the shared pool (registry drains and
# admission decisions run on client/dispatch threads that already
# exist); a `raw-threads-ok:` comment there is itself a violation.
#
# Usage: check_no_raw_threads.sh [dir ...]
#   (default: <repo>/src <repo>/bench <repo>/examples)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
if [ "$#" -gt 0 ]; then
  dirs=("$@")
else
  dirs=("$repo_root/src" "$repo_root/bench" "$repo_root/examples")
fi

pattern='std::thread[[:space:]]*\(|std::thread[[:space:]]*>|std::jthread|#[[:space:]]*pragma[[:space:]]+omp|std::async'

status=0
for dir in "${dirs[@]}"; do
  if [ ! -d "$dir" ]; then
    echo "check_no_raw_threads: no such directory: $dir" >&2
    exit 2
  fi

  violations=$(grep -rnE "$pattern" "$dir" \
    --include='*.cpp' --include='*.hpp' \
    | grep -v '/core/parallel/' \
    | grep -v '/comm/' || true)

  # Drop hits in files that declare a waiver — except inside the
  # no-waiver zone, where the waiver comment is ignored.
  if [ -n "$violations" ]; then
    filtered=""
    while IFS= read -r line; do
      file="${line%%:*}"
      case "$file" in
        */src/serve/frontend/*) filtered+="$line"$'\n'; continue ;;
      esac
      if ! grep -q 'raw-threads-ok:' "$file"; then
        filtered+="$line"$'\n'
      fi
    done <<< "$violations"
    violations="${filtered%$'\n'}"
  fi

  # A waiver comment inside the no-waiver zone is rejected outright,
  # even before any thread primitive lands next to it.
  if [ -d "$dir/serve/frontend" ] || [[ "$dir" == */src ]]; then
    waivers=$(grep -rln 'raw-threads-ok:' "$dir" \
      --include='*.cpp' --include='*.hpp' 2>/dev/null \
      | grep '/src/serve/frontend/' || true)
    if [ -n "$waivers" ]; then
      echo "check_no_raw_threads: 'raw-threads-ok:' waivers are not" \
           "honored in src/serve/frontend/ (no-waiver zone):" >&2
      echo "$waivers" >&2
      status=1
    fi
  fi

  if [ -n "$violations" ]; then
    echo "check_no_raw_threads: raw threading primitives outside" \
         "core/parallel/ and comm/ in $dir:" >&2
    echo "$violations" >&2
    echo >&2
    echo "Use core::parallel::ThreadPool::global() / parallel_for," \
         "or add a 'raw-threads-ok: <why>' comment if the threads" \
         "genuinely cannot run on the pool." >&2
    status=1
  else
    echo "check_no_raw_threads: OK ($dir)"
  fi
done

exit $status
