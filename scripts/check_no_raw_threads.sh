#!/usr/bin/env bash
# Lint: all parallelism in src/ must go through the shared pool in
# src/core/parallel/. Raw std::thread construction, OpenMP pragmas, and
# std::async anywhere else in src/ are rejected — they bypass
# MATSCI_NUM_THREADS sizing, the nesting guard, and the determinism
# contract (see DESIGN.md "Threading model").
#
# Exempt:
#   src/core/parallel/  — the pool implementation itself
#   src/comm/           — simulated DDP ranks are threads by design
#
# Usage: check_no_raw_threads.sh [src-dir]   (default: <repo>/src)
set -u

src_dir="${1:-$(cd "$(dirname "$0")/.." && pwd)/src}"
if [ ! -d "$src_dir" ]; then
  echo "check_no_raw_threads: no such directory: $src_dir" >&2
  exit 2
fi

pattern='std::thread[[:space:]]*\(|#[[:space:]]*pragma[[:space:]]+omp|std::async'

violations=$(grep -rnE "$pattern" "$src_dir" \
  --include='*.cpp' --include='*.hpp' \
  | grep -v '/core/parallel/' \
  | grep -v '/comm/' || true)

if [ -n "$violations" ]; then
  echo "check_no_raw_threads: raw threading primitives outside" \
       "src/core/parallel/ and src/comm/:" >&2
  echo "$violations" >&2
  echo >&2
  echo "Use core::parallel::ThreadPool::global() / parallel_for instead." >&2
  exit 1
fi

echo "check_no_raw_threads: OK ($src_dir)"
